"""Fault tolerance (§4.4): lossy networks, crashes, and switch failure."""

import pytest

from repro.core import FSConfig, FSError, SwitchFSCluster
from repro.net import FaultModel
from repro.sim import make_rng


def lossy_cluster(loss=0.05, dup=0.02, reorder=0.05, seed=13, **cfg):
    defaults = dict(num_servers=4, cores_per_server=2, seed=seed)
    defaults.update(cfg)
    faults = FaultModel(
        make_rng(seed, "net"),
        loss_prob=loss,
        dup_prob=dup,
        reorder_prob=reorder,
        reorder_jitter_us=2.0,
    )
    return SwitchFSCluster(FSConfig(**defaults), faults=faults)


class TestUnreliableNetwork:
    def test_ops_complete_under_loss_dup_reorder(self):
        cluster = lossy_cluster()
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        for i in range(30):
            cluster.run_op(fs.create(f"/d/f{i}"))
        listing = cluster.run_op(fs.readdir("/d"))
        assert sorted(listing["entries"]) == sorted(f"f{i}" for i in range(30))

    def test_no_duplicate_execution_under_duplication(self):
        """Heavy duplication must not double-apply any update."""
        cluster = lossy_cluster(loss=0.0, dup=0.5, reorder=0.3)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        for i in range(20):
            cluster.run_op(fs.create(f"/d/f{i}"))
        cluster.run_op(fs.delete("/d/f0"))
        info = cluster.run_op(fs.statdir("/d"))
        assert info["entry_count"] == 19

    def test_visibility_survives_lost_acks(self):
        """Even when REMOVE/ack notifications are lost, reads stay correct
        (a stale fingerprint only causes spurious aggregations)."""
        cluster = lossy_cluster(loss=0.15, seed=99)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        for i in range(15):
            cluster.run_op(fs.create(f"/d/f{i}"))
            if i % 5 == 4:
                info = cluster.run_op(fs.statdir("/d"))
                assert info["entry_count"] == i + 1

    def test_retransmit_counters_nonzero_under_loss(self):
        cluster = lossy_cluster(loss=0.25, seed=5)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        for i in range(10):
            cluster.run_op(fs.create(f"/d/f{i}"))
        assert fs.node.retransmits > 0


class TestServerCrashRecovery:
    def test_acked_state_survives_crash(self):
        cluster = SwitchFSCluster(
            FSConfig(num_servers=4, cores_per_server=2, proactive_enabled=False)
        )
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        for i in range(12):
            cluster.run_op(fs.create(f"/d/f{i}"))
        # Crash every server, recover all, then verify the namespace.
        for idx in range(4):
            cluster.crash_server(idx)
        for idx in range(4):
            cluster.recover_server(idx)
        listing = cluster.run_op(fs.readdir("/d"))
        assert sorted(listing["entries"]) == sorted(f"f{i}" for i in range(12))

    def test_changelog_entries_rebuilt_from_wal(self):
        cluster = SwitchFSCluster(
            FSConfig(num_servers=4, cores_per_server=2, proactive_enabled=False)
        )
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        for i in range(6):
            cluster.run_op(fs.create(f"/d/f{i}"))
        pending_before = cluster.total_pending_entries()
        assert pending_before > 0
        for idx in range(4):
            cluster.crash_server(idx)
        assert cluster.total_pending_entries() == 0  # DRAM lost
        for idx in range(4):
            cluster.recover_server(idx)
        assert cluster.total_pending_entries() == pending_before

    def test_recovery_time_scales_with_records(self):
        def recovery_time(n_files):
            cluster = SwitchFSCluster(
                FSConfig(num_servers=2, cores_per_server=2, proactive_enabled=False)
            )
            fs = cluster.client(0)
            cluster.run_op(fs.mkdir("/d"))
            for i in range(n_files):
                cluster.run_op(fs.create(f"/d/f{i}"))
            cluster.crash_server(0)
            return cluster.recover_server(0)

        assert recovery_time(60) > recovery_time(10)

    def test_single_server_crash_leaves_others_serving(self):
        cluster = SwitchFSCluster(FSConfig(num_servers=4, cores_per_server=2))
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        cluster.run_op(fs.statdir("/d"))  # populate the client's cache
        cluster.crash_server(2)
        # Ops landing on live servers still work; ops to the dead server
        # time out.  Find a file owned by a live server.
        landed = 0
        for i in range(12):
            owner = cluster.cmap.file_owner(fs._cache["/d"].id, f"g{i}")
            if owner != "server-2":
                cluster.run_op(fs.create(f"/d/g{i}"))
                landed += 1
        assert landed > 0


class TestSwitchFailure:
    def test_switch_failure_flush_restores_consistency(self):
        cluster = SwitchFSCluster(
            FSConfig(num_servers=4, cores_per_server=2, proactive_enabled=False)
        )
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        for i in range(10):
            cluster.run_op(fs.create(f"/d/f{i}"))
        assert cluster.total_pending_entries() > 0
        duration = cluster.fail_switch()
        assert duration > 0
        assert cluster.total_pending_entries() == 0
        assert cluster.switch.occupancy == 0
        # After recovery, directories are in normal state and reads are
        # correct without any stale-set hits.
        info = cluster.run_op(fs.statdir("/d"))
        assert info["entry_count"] == 10

    def test_switch_failure_recovery_time_scales(self):
        def drill(n_files):
            cluster = SwitchFSCluster(
                FSConfig(num_servers=4, cores_per_server=2, proactive_enabled=False)
            )
            fs = cluster.client(0)
            cluster.run_op(fs.mkdir("/d"))
            for i in range(n_files):
                cluster.run_op(fs.create(f"/d/f{i}"))
            return cluster.fail_switch()

        assert drill(40) > drill(5)

    def test_ops_after_switch_recovery(self):
        cluster = SwitchFSCluster(FSConfig(num_servers=4, cores_per_server=2))
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        cluster.run_op(fs.create("/d/before"))
        cluster.fail_switch()
        cluster.run_op(fs.create("/d/after"))
        listing = cluster.run_op(fs.readdir("/d"))
        assert sorted(listing["entries"]) == ["after", "before"]
