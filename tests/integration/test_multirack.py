"""Multi-rack leaf-spine deployments (§5.4).

The stale set moves from the ToR to the spine; with several spines,
directories are range-partitioned over them by fingerprint.  Semantics
must be identical to single-rack; the observable differences are longer
paths (4 links) and stale-set state spread over the spines."""

import pytest

from repro.core import FSConfig, FSError, SwitchFSCluster, fingerprint_of, ROOT_ID


def make(**overrides):
    defaults = dict(
        num_servers=4, cores_per_server=2, seed=14,
        topology="leaf-spine", num_racks=2,
    )
    defaults.update(overrides)
    return SwitchFSCluster(FSConfig(**defaults))


class TestLeafSpineSemantics:
    def test_full_op_surface(self):
        cluster = make()
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        for i in range(8):
            cluster.run_op(fs.create(f"/d/f{i}"))
        cluster.run_op(fs.delete("/d/f0"))
        listing = cluster.run_op(fs.readdir("/d"))
        assert sorted(listing["entries"]) == sorted(f"f{i}" for i in range(1, 8))
        assert cluster.run_op(fs.statdir("/d"))["entry_count"] == 7
        cluster.run_op(fs.rename("/d/f1", "/d/g1"))
        assert cluster.run_op(fs.stat("/d/g1"))["name"] == "g1"

    def test_latency_pays_the_spine_detour(self):
        def create_latency(topology):
            cluster = make(topology=topology) if topology == "leaf-spine" else \
                SwitchFSCluster(FSConfig(num_servers=4, cores_per_server=2, seed=14))
            fs = cluster.client(0)
            cluster.run_op(fs.mkdir("/d"))
            t0 = cluster.sim.now
            cluster.run_op(fs.create("/d/f"))
            return cluster.sim.now - t0

        single = create_latency("single-rack")
        multi = create_latency("leaf-spine")
        assert multi > single  # two extra links each way

    def test_stale_set_at_spine(self):
        cluster = make(proactive_enabled=False)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        cluster.run_op(fs.create("/d/f"))
        fp = fingerprint_of(ROOT_ID, "d")
        assert cluster.switch.stale_set_for(fp).query(fp)

    def test_switch_failure_recovery_multirack(self):
        cluster = make(proactive_enabled=False)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        for i in range(5):
            cluster.run_op(fs.create(f"/d/f{i}"))
        cluster.fail_switch()
        assert cluster.total_pending_entries() == 0
        assert cluster.run_op(fs.statdir("/d"))["entry_count"] == 5


class TestMultipleSpines:
    def test_fingerprints_partition_across_spines(self):
        cluster = make(num_spine_switches=2, proactive_enabled=False)
        fs = cluster.client(0)
        # Create enough directories that both spines own some fingerprints.
        for i in range(12):
            cluster.run_op(fs.mkdir(f"/dir{i}"))
            cluster.run_op(fs.create(f"/dir{i}/f"))
        occupancies = [s.occupancy for s in cluster.spines]
        assert all(o > 0 for o in occupancies), occupancies

    def test_semantics_with_two_spines(self):
        cluster = make(num_spine_switches=2)
        fs = cluster.client(0)
        for i in range(6):
            cluster.run_op(fs.mkdir(f"/dir{i}"))
            for j in range(3):
                cluster.run_op(fs.create(f"/dir{i}/f{j}"))
        for i in range(6):
            listing = cluster.run_op(fs.readdir(f"/dir{i}"))
            assert sorted(listing["entries"]) == ["f0", "f1", "f2"]

    def test_failure_resets_every_spine(self):
        cluster = make(num_spine_switches=2, proactive_enabled=False)
        fs = cluster.client(0)
        for i in range(8):
            cluster.run_op(fs.mkdir(f"/dir{i}"))
            cluster.run_op(fs.create(f"/dir{i}/f"))
        cluster.fail_switch()
        assert all(s.occupancy == 0 for s in cluster.spines)
        for i in range(8):
            assert cluster.run_op(fs.statdir(f"/dir{i}"))["entry_count"] == 1


class TestConfigValidation:
    def test_bad_topology_rejected(self):
        with pytest.raises(ValueError):
            FSConfig(topology="mesh")

    def test_bad_rack_count_rejected(self):
        with pytest.raises(ValueError):
            FSConfig(topology="leaf-spine", num_racks=0)
