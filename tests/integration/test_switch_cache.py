"""End-to-end tests for the in-switch hot-dentry cache (DESIGN.md §15).

The load-bearing properties: switch-served replies carry exactly the
value a server read would have returned, every mutation invalidates the
matching line before its reply departs (so no read ever observes a
pre-mutation cached value after the mutation completed), and switch
reboot / epoch cutover cold-start the cache without hurting correctness.
"""

import pytest

from repro.analysis import (
    SimTracer,
    instrument_server,
    lock_order_cycles,
    race_findings,
)
from repro.bench import make_cluster, run_stream, scaled_config
from repro.core import FSConfig, FSError, SwitchFSCluster
from repro.workloads import FixedOpStream, bootstrap, single_large_directory


def cache_cluster(seed=21, cache=True, **cfg):
    defaults = dict(
        num_servers=2,
        cores_per_server=2,
        seed=seed,
        switch_cache=cache,
        switch_cache_stages=2,
        switch_cache_index_bits=4,
    )
    defaults.update(cfg)
    return SwitchFSCluster(FSConfig(**defaults))


def populate(cluster, fs, n=6, d="/d"):
    cluster.run_op(fs.mkdir(d))
    for i in range(n):
        cluster.run_op(fs.create(f"{d}/f{i}"))


class TestSwitchServedReplies:
    def test_second_stat_served_from_switch(self):
        cluster = cache_cluster()
        fs = cluster.client(0)
        populate(cluster, fs)

        first = cluster.run_op(fs.stat("/d/f0"))  # miss -> FILL on return
        second = cluster.run_op(fs.stat("/d/f0"))  # hit at the switch
        assert second == first

        assert fs.counters.get("switch_cache_hits") >= 1
        assert fs.counters.get("switch_cache_misses") >= 1
        stats = cluster.switch_stats()
        assert stats.cache_hits >= 1
        assert stats.cache_fills >= 1
        assert stats.cache_occupancy > 0

    def test_hit_latency_bucketed_and_cheaper(self):
        cluster = cache_cluster()
        fs = cluster.client(0)
        populate(cluster, fs)
        cluster.run_op(fs.stat("/d/f0"))
        cluster.run_op(fs.stat("/d/f0"))
        hits = fs.switch_latency.bucket("switch_hit")
        misses = fs.switch_latency.bucket("switch_miss")
        assert len(hits) >= 1 and len(misses) >= 1
        # The switch turnaround skips the server entirely: strictly
        # faster than the miss that filled the line (deterministic sim).
        assert max(hits) < min(misses)

    def test_open_also_cache_eligible(self):
        cluster = cache_cluster()
        fs = cluster.client(0)
        populate(cluster, fs)
        cluster.run_op(fs.open("/d/f1"))
        cluster.run_op(fs.open("/d/f1"))
        assert fs.counters.get("switch_cache_hits") >= 1

    def test_disabled_cache_serves_nothing(self):
        cluster = cache_cluster(cache=False)
        fs = cluster.client(0)
        populate(cluster, fs)
        cluster.run_op(fs.stat("/d/f0"))
        cluster.run_op(fs.stat("/d/f0"))
        assert fs.counters.get("switch_cache_hits") == 0
        assert fs.counters.get("switch_cache_misses") == 0
        assert cluster.switch_stats().cache_capacity == 0


class TestCoherence:
    def test_delete_then_stat_is_enoent(self):
        """The EVICT departs before the delete's reply: once the delete
        completed, no stat may be served from the dead cached line."""
        cluster = cache_cluster()
        fs = cluster.client(0)
        populate(cluster, fs)
        cluster.run_op(fs.stat("/d/f2"))  # line cached
        cluster.run_op(fs.delete("/d/f2"))
        with pytest.raises(FSError):
            cluster.run_op(fs.stat("/d/f2"))

    def test_create_after_delete_serves_fresh_inode(self):
        cluster = cache_cluster()
        fs = cluster.client(0)
        populate(cluster, fs)
        cluster.run_op(fs.stat("/d/f3"))
        cluster.run_op(fs.delete("/d/f3"))
        cluster.run_op(fs.create("/d/f3", perm=0o600))
        value = cluster.run_op(fs.stat("/d/f3"))
        assert value["perm"] == 0o600  # not the cached pre-delete inode

    def test_rename_invalidates_both_names(self):
        """The 2PC commit evicts every mutated (pid, name): the old name
        must stop resolving and the new name must serve the moved inode."""
        cluster = cache_cluster()
        fs = cluster.client(0)
        populate(cluster, fs)
        cluster.run_op(fs.stat("/d/f4"))  # old name cached
        cluster.run_op(fs.rename("/d/f4", "/d/g4"))
        with pytest.raises(FSError):
            cluster.run_op(fs.stat("/d/f4"))
        assert cluster.run_op(fs.stat("/d/g4"))["name"] == "g4"

    def test_rmdir_invalidates_dir_lookup_line(self):
        cluster = cache_cluster()
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/gone"))
        # A fresh client resolves /gone over the network (LOOKUP + FILL);
        # client 0's own dentry cache would mask the switch's.
        other = cluster.client(1)
        cluster.run_op(other.statdir("/gone"))
        cluster.run_op(fs.rmdir("/gone"))
        third = cluster.client(2)
        with pytest.raises(FSError):
            cluster.run_op(third.statdir("/gone"))


class TestNamespaceEquivalence:
    OPS = 40

    @staticmethod
    def _drive(cluster):
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/ns"))
        for i in range(12):
            cluster.run_op(fs.create(f"/ns/f{i}"))
        for i in range(12):
            cluster.run_op(fs.stat(f"/ns/f{i}"))
            cluster.run_op(fs.stat(f"/ns/f{i % 4}"))  # hot subset
        for i in range(0, 12, 3):
            cluster.run_op(fs.delete(f"/ns/f{i}"))
        cluster.run_op(fs.create("/ns/extra"))
        cluster.run_op(fs.rename("/ns/extra", "/ns/renamed"))
        cluster.run_op(fs.rename("/ns/f1", "/ns/moved"))
        cluster.run_op(fs.stat("/ns/moved"))
        cluster.settle()
        return fs

    @classmethod
    def _snapshot(cls, cluster, fs):
        """Structural namespace state: listings, counts, and per-file
        attributes that are timing-independent (mtimes differ between a
        cached and an uncached run because virtual time diverges)."""
        listing = sorted(cluster.run_op(fs.readdir("/ns"))["entries"])
        count = cluster.run_op(fs.statdir("/ns"))["entry_count"]
        stats = {}
        for name in listing:
            v = cluster.run_op(fs.stat(f"/ns/{name}"))
            stats[name] = (v["pid"], v["name"], v["perm"], v["size"])
        return listing, count, stats

    def test_cached_run_equals_uncached_run(self):
        cached = cache_cluster(seed=33, cache=True)
        fs_cached = self._drive(cached)
        plain = cache_cluster(seed=33, cache=False)
        fs_plain = self._drive(plain)
        assert self._snapshot(cached, fs_cached) == self._snapshot(plain, fs_plain)
        # The cached run really exercised the cache datapath.
        assert cached.switch_stats().cache_hits > 0
        assert plain.switch_stats().cache_capacity == 0


class TestLifecycle:
    def test_switch_reboot_cold_starts_cache(self):
        cluster = cache_cluster(num_servers=4)
        fs = cluster.client(0)
        populate(cluster, fs)
        cluster.run_op(fs.stat("/d/f0"))
        assert cluster.switch_stats().cache_occupancy > 0
        cluster.fail_switch()
        assert cluster.switch_stats().cache_occupancy == 0
        # Post-recovery the namespace is intact and the cache refills.
        value = cluster.run_op(fs.stat("/d/f0"))
        assert value["name"] == "f0"
        cluster.run_op(fs.stat("/d/f0"))
        assert cluster.switch_stats().cache_occupancy > 0
        assert fs.counters.get("switch_cache_hits") >= 1

    def test_epoch_cutover_flushes_cache(self):
        cluster = cache_cluster()
        fs = cluster.client(0)
        populate(cluster, fs)
        cluster.run_op(fs.stat("/d/f0"))
        cluster.run_op(fs.stat("/d/f1"))
        assert cluster.switch_stats().cache_occupancy > 0
        up = cluster.scale_up()
        assert up["epoch"] == 1
        # apply_epoch flushed every line: replies cached under the old
        # epoch may name outgoing owners.
        assert cluster.switch_stats().cache_occupancy == 0
        # The namespace survives and the cache refills under the new view.
        for i in range(6):
            v = cluster.run_op(fs.stat(f"/d/f{i}"))
            assert v["name"] == f"f{i}"
        cluster.run_op(fs.stat("/d/f0"))
        assert cluster.switch_stats().cache_occupancy > 0

    def test_traced_cache_run_has_no_cycles_or_races(self):
        cluster = cache_cluster(num_servers=3, seed=13)
        tracer = SimTracer(capture_stacks=False)
        tracer.attach(cluster.sim)
        for server in cluster.servers:
            instrument_server(tracer, server)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/t"))
        for i in range(10):
            cluster.run_op(fs.create(f"/t/f{i}"))
        for i in range(10):
            cluster.run_op(fs.stat(f"/t/f{i}"))  # fills
            cluster.run_op(fs.stat(f"/t/f{i}"))  # hits
        for i in range(0, 10, 2):
            cluster.run_op(fs.delete(f"/t/f{i}"))  # evicts
        cluster.settle()
        tracer.detach()
        assert cluster.switch_stats().cache_hits > 0
        assert cluster.switch_stats().cache_evictions > 0
        assert tracer.lock_events
        assert lock_order_cycles(tracer) == []
        assert race_findings(tracer) == []


class TestStatHotspotWin:
    """Fig 11-style acceptance point: cache+stale-set must beat
    stale-set-only on the read/stat-heavy hotspot (virtual time, so the
    comparison is deterministic)."""

    @staticmethod
    def _run(cache):
        overrides = (
            dict(switch_cache=True, switch_cache_stages=4, switch_cache_index_bits=10)
            if cache
            else {}
        )
        cluster = make_cluster(
            "SwitchFS", scaled_config(num_servers=2, seed=17, **overrides)
        )
        pop = bootstrap(cluster, single_large_directory(64), warm_clients=[0])
        stream = FixedOpStream("stat", pop, seed=17, dir_choice="single")
        return run_stream(cluster, stream, total_ops=400, inflight=16, op_label="stat")

    def test_cache_beats_stale_set_only_on_stat_hotspot(self):
        on = self._run(cache=True)
        off = self._run(cache=False)
        assert on.switch_cache_hit_rate > 0.5
        assert off.switch_cache == {}
        assert on.throughput_kops > off.throughput_kops
        assert on.mean_latency_us < off.mean_latency_us
        # The latency split shows where the win comes from.
        hit_samples = on.latency.bucket("switch_hit")
        miss_samples = on.latency.bucket("switch_miss")
        assert len(hit_samples) + len(miss_samples) == 400
        assert max(hit_samples) < min(miss_samples)
