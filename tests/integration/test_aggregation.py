"""Aggregation machinery: stale set interplay, proactive pushes, fallback."""

import pytest

from repro.core import FSConfig, SwitchFSCluster, fingerprint_of, ROOT_ID


def make(**overrides):
    defaults = dict(num_servers=4, cores_per_server=2, seed=3)
    defaults.update(overrides)
    return SwitchFSCluster(FSConfig(**defaults))


class TestStaleSetInterplay:
    def test_create_marks_parent_scattered(self):
        cluster = make(proactive_enabled=False)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        fp = fingerprint_of(ROOT_ID, "d")
        cluster.run_op(fs.create("/d/f"))
        assert cluster.switch.stale_set_for(fp).query(fp)

    def test_statdir_clears_scattered_state(self):
        cluster = make(proactive_enabled=False)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        fp = fingerprint_of(ROOT_ID, "d")
        cluster.run_op(fs.create("/d/f"))
        cluster.run_op(fs.statdir("/d"))
        cluster.run(until=cluster.sim.now + 1_000)  # let the REMOVE land
        assert not cluster.switch.stale_set_for(fp).query(fp)

    def test_normal_statdir_needs_no_aggregation(self):
        cluster = make(proactive_enabled=False)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        cluster.run_op(fs.statdir("/d"))  # clears the mkdir scatter on root? no: /d itself is fresh
        owner = cluster.server_by_addr(
            cluster.cmap.dir_owner_by_fp(fingerprint_of(ROOT_ID, "d"))
        )
        before = owner.counters.get("read_triggered_aggregations")
        cluster.run_op(fs.statdir("/d"))
        assert owner.counters.get("read_triggered_aggregations") == before

    def test_changelog_entries_parked_until_read(self):
        cluster = make(proactive_enabled=False)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        for i in range(5):
            cluster.run_op(fs.create(f"/d/f{i}"))
        assert cluster.total_pending_entries() > 0
        cluster.run_op(fs.readdir("/d"))
        cluster.run_op(fs.statdir("/"))  # flush the mkdir's entry on root
        cluster.run(until=cluster.sim.now + 1_000)
        assert cluster.total_pending_entries() == 0


class TestProactiveAggregation:
    def test_push_threshold_triggers_aggregation(self):
        cluster = make(proactive_push_entries=5, grace_period_us=20.0, grace_cap_us=100.0)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        for i in range(30):
            cluster.run_op(fs.create(f"/d/f{i}"))
        cluster.settle()
        assert cluster.total_pending_entries() == 0
        aggs = sum(s.counters.get("proactive_aggregations") for s in cluster.servers)
        assert aggs >= 1

    def test_idle_push_flushes_small_logs(self):
        cluster = make(
            proactive_push_entries=1000,  # threshold never reached
            proactive_idle_push_us=500.0,
            grace_period_us=20.0,
        )
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        cluster.run_op(fs.create("/d/only"))
        cluster.run(until=cluster.sim.now + 10_000)
        assert cluster.total_pending_entries() == 0

    def test_disabled_proactive_keeps_entries(self):
        cluster = make(proactive_enabled=False)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        cluster.run_op(fs.create("/d/f"))
        cluster.run(until=cluster.sim.now + 50_000)
        assert cluster.total_pending_entries() > 0


class TestOverflowFallback:
    def test_insert_overflow_falls_back_to_sync(self):
        # A 1x1 stale set overflows after two distinct set-index-0 groups.
        cluster = SwitchFSCluster(
            FSConfig(
                num_servers=4,
                cores_per_server=2,
                stale_stages=1,
                stale_index_bits=1,
                proactive_enabled=False,
            )
        )
        fs = cluster.client(0)
        # Enough distinct directories that inserts collide and overflow.
        for i in range(12):
            cluster.run_op(fs.mkdir(f"/dir{i}"))
            cluster.run_op(fs.create(f"/dir{i}/f"))
        stats = cluster.switch_stats()
        assert stats.insert_overflows > 0
        fallbacks = sum(s.counters.get("sync_fallbacks") for s in cluster.servers)
        assert fallbacks > 0
        # Visibility must hold even for fallback-applied updates.
        for i in range(12):
            listing = cluster.run_op(fs.readdir(f"/dir{i}"))
            assert listing["entries"] == ["f"]

    def test_fallback_applies_exactly_once(self):
        cluster = SwitchFSCluster(
            FSConfig(
                num_servers=2,
                cores_per_server=2,
                stale_stages=1,
                stale_index_bits=1,
                proactive_enabled=False,
            )
        )
        fs = cluster.client(0)
        for i in range(10):
            cluster.run_op(fs.mkdir(f"/dir{i}"))
            for j in range(3):
                cluster.run_op(fs.create(f"/dir{i}/f{j}"))
        for i in range(10):
            assert cluster.run_op(fs.statdir(f"/dir{i}"))["entry_count"] == 3


class TestSwitchCounters:
    def test_queries_on_every_dir_read(self):
        cluster = make(proactive_enabled=False)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        q0 = cluster.switch_stats().queries
        cluster.run_op(fs.statdir("/d"))
        cluster.run_op(fs.readdir("/d"))
        assert cluster.switch_stats().queries >= q0 + 2

    def test_multicast_on_every_async_update(self):
        cluster = make(proactive_enabled=False)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        m0 = cluster.switch_stats().multicasts
        cluster.run_op(fs.create("/d/f"))
        assert cluster.switch_stats().multicasts == m0 + 1
