"""Concurrent rename stress: the lock-free-parents design must stay
deadlock-free and linearizable under racing renames, creates, and reads."""

import pytest

from repro.core import FSConfig, FSError, SwitchFSCluster
from repro.sim import AllOf


def make():
    return SwitchFSCluster(FSConfig(num_servers=4, cores_per_server=4, seed=77))


def run_all(cluster, gens):
    procs = [cluster.sim.spawn(g, name=f"g{i}") for i, g in enumerate(gens)]

    def join():
        yield AllOf(cluster.sim, procs)

    cluster.sim.run_process(cluster.sim.spawn(join(), name="join"), until=5e6)


class TestConcurrentRenames:
    def test_many_parallel_renames_complete(self):
        cluster = make()
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/a"))
        cluster.run_op(fs.mkdir("/b"))
        for i in range(24):
            cluster.run_op(fs.create(f"/a/f{i}"))

        def rn(i):
            yield from fs.rename(f"/a/f{i}", f"/b/g{i}")

        run_all(cluster, [rn(i) for i in range(24)])
        listing_a = cluster.run_op(fs.readdir("/a"))
        listing_b = cluster.run_op(fs.readdir("/b"))
        assert listing_a["entries"] == []
        assert sorted(listing_b["entries"]) == sorted(f"g{i}" for i in range(24))
        assert cluster.run_op(fs.statdir("/a"))["entry_count"] == 0
        assert cluster.run_op(fs.statdir("/b"))["entry_count"] == 24

    def test_opposite_direction_renames_no_deadlock(self):
        cluster = make()
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/a"))
        cluster.run_op(fs.mkdir("/b"))
        for i in range(10):
            cluster.run_op(fs.create(f"/a/x{i}"))
            cluster.run_op(fs.create(f"/b/y{i}"))

        def a_to_b(i):
            yield from fs.rename(f"/a/x{i}", f"/b/x{i}")

        def b_to_a(i):
            yield from fs.rename(f"/b/y{i}", f"/a/y{i}")

        gens = []
        for i in range(10):
            gens.append(a_to_b(i))
            gens.append(b_to_a(i))
        run_all(cluster, gens)
        a = cluster.run_op(fs.readdir("/a"))["entries"]
        b = cluster.run_op(fs.readdir("/b"))["entries"]
        assert sorted(a) == sorted(f"y{i}" for i in range(10))
        assert sorted(b) == sorted(f"x{i}" for i in range(10))

    def test_racing_renames_to_same_destination(self):
        """Exactly one of two renames targeting the same dst may win."""
        cluster = make()
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        cluster.run_op(fs.create("/d/a"))
        cluster.run_op(fs.create("/d/b"))
        outcomes = []

        def rn(src):
            try:
                yield from fs.rename(src, "/d/winner")
                outcomes.append(("ok", src))
            except FSError as exc:
                outcomes.append((exc.code, src))

        run_all(cluster, [rn("/d/a"), rn("/d/b")])
        codes = sorted(code for code, _ in outcomes)
        assert codes == ["EEXIST", "ok"]
        assert cluster.run_op(fs.statdir("/d"))["entry_count"] == 2

    def test_rename_immediately_after_create(self):
        """The pending CREATE entry and the rename's DELETE entry live in
        the same change-log; application order must make the old name
        vanish."""
        cluster = make()
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))

        def create_then_rename(i):
            yield from fs.create(f"/d/tmp{i}")
            yield from fs.rename(f"/d/tmp{i}", f"/d/final{i}")

        run_all(cluster, [create_then_rename(i) for i in range(12)])
        listing = cluster.run_op(fs.readdir("/d"))
        assert sorted(listing["entries"]) == sorted(f"final{i}" for i in range(12))
        assert cluster.run_op(fs.statdir("/d"))["entry_count"] == 12

    def test_rename_into_recently_deleted_name(self):
        """A pending DELETE(dst) entry must not erase the renamed entry."""
        cluster = make()
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        cluster.run_op(fs.create("/d/target"))
        cluster.run_op(fs.create("/d/mover"))
        cluster.run_op(fs.delete("/d/target"))      # DELETE(target) pending
        cluster.run_op(fs.rename("/d/mover", "/d/target"))
        listing = cluster.run_op(fs.readdir("/d"))
        assert listing["entries"] == ["target"]
        assert cluster.run_op(fs.statdir("/d"))["entry_count"] == 1
        assert cluster.run_op(fs.stat("/d/target"))["name"] == "target"

    def test_renames_mixed_with_creates_and_reads(self):
        cluster = make()
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        cluster.run_op(fs.mkdir("/e"))
        for i in range(8):
            cluster.run_op(fs.create(f"/d/s{i}"))

        def renamer(i):
            yield from fs.rename(f"/d/s{i}", f"/e/s{i}")

        def creator(i):
            yield from fs.create(f"/d/c{i}")

        def reader():
            yield from fs.readdir("/d")
            yield from fs.statdir("/e")

        gens = [renamer(i) for i in range(8)] + [creator(i) for i in range(8)]
        gens += [reader() for _ in range(4)]
        run_all(cluster, gens)
        d = cluster.run_op(fs.readdir("/d"))["entries"]
        e = cluster.run_op(fs.readdir("/e"))["entries"]
        assert sorted(d) == sorted(f"c{i}" for i in range(8))
        assert sorted(e) == sorted(f"s{i}" for i in range(8))
