"""Tier-1 suite configuration: run with the pool sanitizer installed.

Every test executes with the packet/header freelist sanitizer active
(DESIGN.md §12), so any use-after-recycle, double-recycle, or aliasing
introduced by a change trips a loud :class:`PoolSanitizerError` instead
of silently corrupting later traffic.  Opt out (e.g. to time something)
with ``REPRO_POOL_SANITIZER=0``.
"""

import os

import pytest

from repro.analysis import install_pool_sanitizer, uninstall_pool_sanitizer


@pytest.fixture(autouse=True)
def _pool_sanitizer():
    if os.environ.get("REPRO_POOL_SANITIZER", "1") == "0":
        yield None
        return
    san = install_pool_sanitizer()
    try:
        yield san
    finally:
        uninstall_pool_sanitizer()
