"""Snapshot/restore (checkpoint images) and tolerant WAL marking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore import KVStore, WriteAheadLog


class TestSnapshotRestore:
    def test_roundtrip(self):
        kv = KVStore()
        kv.put((1, "a"), "x")
        kv.put((2, "b"), "y")
        image = kv.snapshot()
        kv.put((3, "c"), "z")
        kv.restore(image)
        assert (3, "c") not in kv
        assert kv.get((1, "a")) == "x"
        assert len(kv) == 2

    def test_snapshot_is_a_copy(self):
        kv = KVStore()
        kv.put((1, "a"), "x")
        image = kv.snapshot()
        kv.delete((1, "a"))
        assert image[(1, "a")] == "x"

    def test_restore_rebuilds_scan_index(self):
        kv = KVStore()
        for name in "cba":
            kv.put((1, name), name)
        image = kv.snapshot()
        kv2 = KVStore()
        kv2.restore(image)
        assert [k for k, _ in kv2.scan_prefix((1,))] == [(1, "a"), (1, "b"), (1, "c")]

    @settings(max_examples=50)
    @given(
        items=st.dictionaries(
            st.tuples(st.integers(0, 3), st.text(alphabet="ab", min_size=1, max_size=2)),
            st.integers(),
            max_size=12,
        )
    )
    def test_restore_equals_snapshot_source(self, items):
        kv = KVStore()
        for key, value in items.items():
            kv.put(key, value)
        other = KVStore()
        other.restore(kv.snapshot())
        assert len(other) == len(kv)
        for key, value in items.items():
            assert other.get(key) == value


class TestTolerantWalMarks:
    def test_mark_if_present_true_for_live_record(self):
        wal = WriteAheadLog()
        lsn = wal.append("kv", 1)
        assert wal.mark_applied_if_present(lsn)
        assert wal.unapplied_count() == 0

    def test_mark_if_present_false_after_truncation(self):
        wal = WriteAheadLog()
        lsn = wal.append("kv", 1)
        wal.mark_applied(lsn)
        wal.checkpoint()
        assert not wal.mark_applied_if_present(lsn)

    def test_strict_mark_still_raises(self):
        wal = WriteAheadLog()
        with pytest.raises(KeyError):
            wal.mark_applied(7)
