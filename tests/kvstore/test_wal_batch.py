"""Batched WAL bookkeeping: ``append_many`` / ``mark_applied_many``."""

from repro.kvstore.wal import WriteAheadLog


class TestAppendMany:
    def test_matches_per_record_appends(self):
        a, b = WriteAheadLog(), WriteAheadLog()
        payloads = [("put", ("k", i), i) for i in range(5)]
        lsns_a = [a.append("kv", p) for p in payloads]
        lsns_b = b.append_many("kv", payloads)
        assert lsns_a == lsns_b
        assert a.appends == b.appends == 5
        assert [(r.lsn, r.kind, r.payload) for r in a.replay()] == [
            (r.lsn, r.kind, r.payload) for r in b.replay()
        ]

    def test_contiguous_lsns_after_prior_appends(self):
        wal = WriteAheadLog()
        wal.append("kv", "x")
        lsns = wal.append_many("changelog", ["a", "b", "c"])
        assert lsns == [1, 2, 3]
        assert wal.append("kv", "y") == 4

    def test_empty_batch(self):
        wal = WriteAheadLog()
        wal.append("kv", "x")
        assert wal.append_many("changelog", []) == []
        assert wal.appends == 1
        assert wal.append("kv", "y") == 1


class TestMarkAppliedMany:
    def test_marks_and_counts(self):
        wal = WriteAheadLog()
        lsns = wal.append_many("changelog", list(range(6)))
        assert wal.mark_applied_many(lsns[::2]) == 3
        assert wal.unapplied_count() == 3
        assert [r.lsn for r in wal.replay()] == lsns[1::2]

    def test_tolerates_checkpointed_lsns(self):
        wal = WriteAheadLog()
        lsns = wal.append_many("changelog", list(range(4)))
        wal.mark_applied_many(lsns[:2])
        wal.checkpoint()  # drops the applied prefix
        # Re-marking dropped LSNs is silently skipped, like
        # mark_applied_if_present.
        assert wal.mark_applied_many(lsns) == 2
        assert wal.unapplied_count() == 0

    def test_empty_log(self):
        assert WriteAheadLog().mark_applied_many([0, 1]) == 0
