"""Unit + property tests for the KV store, WAL, and transactions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore import (
    KeyNotFound,
    KVStore,
    TransactionError,
    WriteAheadLog,
)


class TestPointOps:
    def test_put_get(self):
        kv = KVStore()
        kv.put((1, "a"), "va")
        assert kv.get((1, "a")) == "va"

    def test_get_missing_raises(self):
        kv = KVStore()
        with pytest.raises(KeyNotFound):
            kv.get((9, "nope"))

    def test_get_or_none(self):
        kv = KVStore()
        assert kv.get_or_none((1, "x")) is None

    def test_overwrite(self):
        kv = KVStore()
        kv.put((1, "a"), "v1")
        kv.put((1, "a"), "v2")
        assert kv.get((1, "a")) == "v2"
        assert len(kv) == 1

    def test_delete_present_and_absent(self):
        kv = KVStore()
        kv.put((1, "a"), "v")
        assert kv.delete((1, "a")) is True
        assert kv.delete((1, "a")) is False
        assert (1, "a") not in kv

    def test_contains(self):
        kv = KVStore()
        kv.put((2, "b"), 1)
        assert (2, "b") in kv
        assert (2, "c") not in kv


class TestScan:
    def test_prefix_scan_orders_by_name(self):
        kv = KVStore()
        kv.put((5, "zeta"), 1)
        kv.put((5, "alpha"), 2)
        kv.put((6, "beta"), 3)
        kv.put((4, "gamma"), 4)
        got = list(kv.scan_prefix((5,)))
        assert [k for k, _ in got] == [(5, "alpha"), (5, "zeta")]

    def test_scan_empty_prefix_region(self):
        kv = KVStore()
        kv.put((1, "a"), 1)
        assert list(kv.scan_prefix((2,))) == []

    def test_count_prefix(self):
        kv = KVStore()
        for name in "abc":
            kv.put((7, name), name)
        assert kv.count_prefix((7,)) == 3

    def test_scan_does_not_leak_across_prefix(self):
        kv = KVStore()
        kv.put((1, "x"), 1)
        kv.put((2, "a"), 2)
        got = [k for k, _ in kv.scan_prefix((1,))]
        assert got == [(1, "x")]


class TestTransactions:
    def test_commit_applies_all(self):
        kv = KVStore()
        txn = kv.transaction()
        txn.put((1, "a"), "x")
        txn.put((1, "b"), "y")
        txn.commit()
        assert kv.get((1, "a")) == "x"
        assert kv.get((1, "b")) == "y"

    def test_abort_applies_nothing(self):
        kv = KVStore()
        txn = kv.transaction()
        txn.put((1, "a"), "x")
        txn.abort()
        assert (1, "a") not in kv

    def test_read_your_writes(self):
        kv = KVStore()
        kv.put((1, "a"), "old")
        txn = kv.transaction()
        txn.put((1, "a"), "new")
        assert txn.get((1, "a")) == "new"
        assert kv.get((1, "a")) == "old"  # not yet visible outside

    def test_staged_delete_hides_key(self):
        kv = KVStore()
        kv.put((1, "a"), "v")
        txn = kv.transaction()
        txn.delete((1, "a"))
        with pytest.raises(KeyNotFound):
            txn.get((1, "a"))
        txn.commit()
        assert (1, "a") not in kv

    def test_double_commit_rejected(self):
        kv = KVStore()
        txn = kv.transaction()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_txn_is_single_wal_record(self):
        kv = KVStore()
        before = len(kv.wal)
        txn = kv.transaction()
        txn.put((1, "a"), 1)
        txn.put((1, "b"), 2)
        txn.commit()
        assert len(kv.wal) == before + 1


class TestCrashRecovery:
    def test_puts_survive_crash(self):
        kv = KVStore()
        kv.put((1, "a"), "va")
        kv.put((2, "b"), "vb")
        kv.crash()
        assert len(kv) == 0
        kv.recover()
        assert kv.get((1, "a")) == "va"
        assert kv.get((2, "b")) == "vb"

    def test_deletes_survive_crash(self):
        kv = KVStore()
        kv.put((1, "a"), "va")
        kv.delete((1, "a"))
        kv.crash()
        kv.recover()
        assert (1, "a") not in kv

    def test_txn_survives_crash_atomically(self):
        kv = KVStore()
        txn = kv.transaction()
        txn.put((1, "a"), 1)
        txn.delete((1, "zz"))
        txn.commit()
        kv.crash()
        kv.recover()
        assert kv.get((1, "a")) == 1

    def test_unlogged_write_lost_on_crash(self):
        kv = KVStore()
        kv.put((1, "a"), "v", log=False)
        kv.crash()
        kv.recover()
        assert (1, "a") not in kv

    def test_scan_index_rebuilt_after_recovery(self):
        kv = KVStore()
        for name in "cab":
            kv.put((3, name), name)
        kv.crash()
        kv.recover()
        assert [k for k, _ in kv.scan_prefix((3,))] == [(3, "a"), (3, "b"), (3, "c")]


class TestWal:
    def test_lsn_monotonic(self):
        wal = WriteAheadLog()
        lsns = [wal.append("kv", i) for i in range(5)]
        assert lsns == [0, 1, 2, 3, 4]

    def test_mark_applied_skips_replay(self):
        wal = WriteAheadLog()
        a = wal.append("changelog", "x")
        b = wal.append("changelog", "y")
        wal.mark_applied(a)
        assert [r.payload for r in wal.replay()] == ["y"]
        assert wal.unapplied_count() == 1

    def test_checkpoint_drops_applied_prefix(self):
        wal = WriteAheadLog()
        a = wal.append("kv", 1)
        b = wal.append("kv", 2)
        c = wal.append("kv", 3)
        wal.mark_applied(a)
        wal.mark_applied(c)
        assert wal.checkpoint() == 1  # only the prefix [a]
        assert len(wal) == 2
        # lsn lookup still works after checkpoint
        wal.mark_applied(b)
        assert wal.checkpoint() == 2

    def test_missing_lsn_raises(self):
        wal = WriteAheadLog()
        with pytest.raises(KeyError):
            wal.mark_applied(99)


# -- property tests: the store matches a dict model ---------------------------

keys = st.tuples(st.integers(min_value=0, max_value=5),
                 st.text(alphabet="abc", min_size=1, max_size=2))
ops = st.lists(
    st.tuples(st.sampled_from(["put", "delete", "crash"]), keys,
              st.integers(min_value=0, max_value=99)),
    max_size=40,
)


@settings(max_examples=150)
@given(ops=ops)
def test_store_matches_dict_model_through_crashes(ops):
    kv = KVStore()
    model = {}
    for op, key, value in ops:
        if op == "put":
            kv.put(key, value)
            model[key] = value
        elif op == "delete":
            kv.delete(key)
            model.pop(key, None)
        else:
            kv.crash()
            kv.recover()
    assert len(kv) == len(model)
    for key, value in model.items():
        assert kv.get(key) == value
    # Scan order must be total-sorted and complete.
    all_keys = []
    for pid in range(6):
        all_keys.extend(k for k, _ in kv.scan_prefix((pid,)))
    assert all_keys == sorted(model.keys())
