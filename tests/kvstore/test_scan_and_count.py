"""Paginated scans and the O(1) prefix-count cache."""

from repro.kvstore import KVStore


def filled(n=10):
    store = KVStore()
    for i in range(n):
        store.put(("E", 1, f"f{i:02d}"), i)
    store.put(("D", 0, "dir"), "inode")
    return store


class TestScanPagination:
    def test_start_resumes_mid_range(self):
        store = filled()
        keys = [k for k, _ in store.scan_prefix(("E", 1), start=("f05",))]
        assert keys == [("E", 1, f"f{i:02d}") for i in range(5, 10)]

    def test_limit_caps_results(self):
        store = filled()
        page = list(store.scan_prefix(("E", 1), limit=3))
        assert [k for k, _ in page] == [("E", 1, f"f{i:02d}") for i in range(3)]

    def test_start_and_limit_paginate_fully(self):
        store = filled()
        seen, token = [], None
        while True:
            page = [
                k[2]
                for k, _ in store.scan_prefix(
                    ("E", 1), start=None if token is None else (token,), limit=4
                )
            ]
            if token is not None and page and page[0] == token:
                page = page[1:]
            if not page:
                break
            seen.extend(page)
            token = page[-1]
        assert seen == [f"f{i:02d}" for i in range(10)]

    def test_limit_counts_live_entries_not_tombstones(self):
        store = filled()
        store.delete(("E", 1, "f00"))
        store.delete(("E", 1, "f01"))
        page = [k[2] for k, _ in store.scan_prefix(("E", 1), limit=2)]
        assert page == ["f02", "f03"]


class TestCountPrefixCache:
    def test_count_is_cached_not_scanned(self):
        store = filled()
        scans_before = store.scans
        merges_before = store.merges
        assert store.count_prefix(("E", 1)) == 10
        assert store.count_prefix(("D", 0)) == 1
        assert store.count_prefix(("E", 2)) == 0
        assert store.scans == scans_before
        assert store.merges == merges_before

    def test_count_tracks_puts_deletes_and_overwrites(self):
        store = KVStore()
        assert store.count_prefix(("E", 1)) == 0
        store.put(("E", 1, "a"), 1)
        store.put(("E", 1, "a"), 2)  # overwrite: no double count
        store.put(("E", 1, "b"), 3)
        assert store.count_prefix(("E", 1)) == 2
        store.delete(("E", 1, "a"))
        store.delete(("E", 1, "a"))  # double delete: no under-count
        assert store.count_prefix(("E", 1)) == 1

    def test_count_survives_transactions_restore_and_recovery(self):
        store = KVStore()
        txn = store.transaction()
        txn.put(("E", 1, "a"), 1)
        txn.put(("E", 1, "b"), 2)
        txn.delete(("E", 1, "a"))
        txn.commit()
        assert store.count_prefix(("E", 1)) == 1
        image = store.snapshot()
        store.put(("E", 1, "c"), 3)
        store.restore(image)
        assert store.count_prefix(("E", 1)) == 1
        store.crash()
        assert store.count_prefix(("E", 1)) == 0
        store.recover()
        # Replay reconstructs everything logged, including the pre-restore c.
        assert store.count_prefix(("E", 1)) == 2

    def test_short_prefix_falls_back_to_range_count(self):
        store = filled()
        # ("E",) has live keys two fields deeper: the one-level cache cannot
        # answer, so the slow key-only range count must.
        assert store.count_prefix(("E",)) == 10
        assert store.count_prefix(()) == 11
