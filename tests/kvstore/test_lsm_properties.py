"""Property tests: the LSM-style KVStore matches reference semantics.

The store's observable behaviour — point reads, ordered prefix scans
(paginated or not), prefix counts, snapshots, and WAL crash-recovery —
must be indistinguishable from the seed's simple sorted-list + dict
implementation, no matter how puts, deletes, overwrites, merges, and
compactions interleave.  Hypothesis drives randomized op sequences
against both and diffs the full visible state after every step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore import KVStore


class ReferenceStore:
    """The seed semantics: a dict plus an op log standing in for the WAL."""

    def __init__(self):
        self.data = {}
        self.log = []

    def put(self, key, value):
        self.log.append(("put", key, value))
        self.data[key] = value

    def delete(self, key):
        self.log.append(("delete", key, None))
        return self.data.pop(key, None) is not None

    def txn(self, ops):
        # One atomic batch; replay semantics equal per-op application.
        for op, key, value in ops:
            self.log.append((op, key, value))
            if op == "put":
                self.data[key] = value
            else:
                self.data.pop(key, None)

    def scan_prefix(self, prefix, start=None, limit=None):
        n = len(prefix)
        keys = sorted(k for k in self.data if k[:n] == prefix)
        if start is not None:
            lo = prefix + tuple(start)
            keys = [k for k in keys if k >= lo]
        if limit is not None:
            keys = keys[:limit]
        return [(k, self.data[k]) for k in keys]

    def count_prefix(self, prefix):
        n = len(prefix)
        return sum(1 for k in self.data if k[:n] == prefix)

    def snapshot(self):
        return dict(self.data)

    def restore(self, image):
        self.data = dict(image)

    def crash_recover(self):
        self.data = {}
        for op, key, value in self.log:
            if op == "put":
                self.data[key] = value
            else:
                self.data.pop(key, None)


def keys_st():
    field = st.integers(min_value=0, max_value=3)
    return st.tuples(field, field, field) | st.tuples(field, field) | st.tuples(field)


ops_st = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys_st(), st.integers(0, 99)),
        st.tuples(st.just("delete"), keys_st(), st.none()),
        st.tuples(st.just("txn"), st.lists(
            st.tuples(st.sampled_from(["put", "delete"]), keys_st(), st.integers(0, 99)),
            max_size=4,
        ), st.none()),
        st.tuples(st.just("scan"), keys_st(), st.none()),
        st.tuples(
            st.just("scan_page"),
            keys_st(),
            st.tuples(keys_st(), st.integers(0, 5)),
        ),
        st.tuples(st.just("count"), keys_st(), st.none()),
        st.tuples(st.just("snapshot"), st.none(), st.none()),
        st.tuples(st.just("restore"), st.none(), st.none()),
        st.tuples(st.just("crash_recover"), st.none(), st.none()),
    ),
    max_size=60,
)


def assert_same_state(store: KVStore, ref: ReferenceStore):
    assert sorted(store.scan_prefix(())) == sorted(ref.data.items())
    assert len(store) == len(ref.data)
    for key in ref.data:
        assert key in store
        assert store.get(key) == ref.data[key]


class TestLsmMatchesReference:
    @settings(max_examples=150, deadline=None)
    @given(ops=ops_st)
    def test_randomized_sequences(self, ops):
        store, ref = KVStore(), ReferenceStore()
        image = ref_image = None
        restored = False
        for op, a, b in ops:
            if op == "put":
                store.put(a, b)
                ref.put(a, b)
            elif op == "delete":
                assert store.delete(a) == ref.delete(a)
            elif op == "txn":
                txn = store.transaction()
                for top, key, value in a:
                    if top == "put":
                        txn.put(key, value)
                    else:
                        txn.delete(key)
                txn.commit()
                ref.txn([(top, k, v if top == "put" else None) for top, k, v in a])
            elif op == "scan":
                assert list(store.scan_prefix(a)) == ref.scan_prefix(a)
            elif op == "scan_page":
                start, limit = b
                assert list(store.scan_prefix(a, start=start, limit=limit)) == (
                    ref.scan_prefix(a, start=start, limit=limit)
                )
            elif op == "count":
                assert store.count_prefix(a) == ref.count_prefix(a)
            elif op == "snapshot":
                image, ref_image = store.snapshot(), ref.snapshot()
            elif op == "restore":
                if image is not None:
                    store.restore(image)
                    ref.restore(ref_image)
                    restored = True
            elif op == "crash_recover":
                # A restore without a covering checkpoint diverges from pure
                # WAL replay by design; skip recovery checks after restores,
                # like the real server (which checkpoints the WAL together
                # with the image).
                if not restored:
                    store.crash()
                    store.recover()
                    ref.crash_recover()
            assert_same_state(store, ref)

    @settings(max_examples=80, deadline=None)
    @given(
        puts=st.lists(st.tuples(keys_st(), st.integers(0, 99)), max_size=30),
        deletes=st.lists(keys_st(), max_size=30),
        prefix=keys_st(),
    )
    def test_interleaved_churn_then_scan_and_count(self, puts, deletes, prefix):
        store, ref = KVStore(), ReferenceStore()
        for key, value in puts:
            store.put(key, value)
            ref.put(key, value)
        for key in deletes:
            store.delete(key)
            ref.delete(key)
        # Resurrect a few deleted keys: tombstone + re-put must merge to one.
        for key in deletes[:5]:
            store.put(key, -1)
            ref.put(key, -1)
        assert list(store.scan_prefix(prefix)) == ref.scan_prefix(prefix)
        assert store.count_prefix(prefix) == ref.count_prefix(prefix)
        assert sorted(store.scan_prefix(())) == sorted(ref.data.items())
