"""Unit + property tests for register stages and the in-network stale set."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.switchfab import RegisterStage, StaleSet, StaleSetConfig


class TestRegisterStage:
    def test_empty_query_misses(self):
        stage = RegisterStage(8)
        assert not stage.query(0, 5)

    def test_conditional_insert_then_query(self):
        stage = RegisterStage(8)
        assert stage.conditional_insert(3, 42)
        assert stage.query(3, 42)
        assert not stage.query(3, 41)

    def test_insert_into_occupied_different_tag_fails(self):
        stage = RegisterStage(8)
        stage.conditional_insert(0, 1)
        assert not stage.conditional_insert(0, 2)
        assert stage.query(0, 1)

    def test_insert_same_tag_idempotent(self):
        stage = RegisterStage(8)
        assert stage.conditional_insert(0, 9)
        assert stage.conditional_insert(0, 9)  # already holds tag: success
        assert stage.occupied == 1

    def test_conditional_remove_only_matching(self):
        stage = RegisterStage(8)
        stage.conditional_insert(0, 7)
        stage.conditional_remove(0, 8)  # mismatch: no-op
        assert stage.query(0, 7)
        stage.conditional_remove(0, 7)
        assert not stage.query(0, 7)
        assert stage.occupied == 0

    def test_tag_zero_reserved(self):
        stage = RegisterStage(8)
        with pytest.raises(ValueError):
            stage.query(0, 0)

    def test_index_bounds(self):
        stage = RegisterStage(8)
        with pytest.raises(IndexError):
            stage.query(8, 1)

    def test_reset(self):
        stage = RegisterStage(4)
        stage.conditional_insert(1, 5)
        stage.reset()
        assert not stage.query(1, 5)
        assert stage.occupied == 0


def small_set(stages=3, index_bits=2):
    return StaleSet(StaleSetConfig(num_stages=stages, index_bits=index_bits))


def fp(index: int, tag: int, index_bits: int = 2) -> int:
    """Build a fingerprint with the given set index and tag."""
    assert 0 < tag < (1 << 32)
    return (index << 32) | tag


class TestStaleSetBasics:
    def test_insert_query_remove_cycle(self):
        s = small_set()
        f = fp(1, 100)
        assert not s.query(f)
        assert s.insert(f)
        assert s.query(f)
        s.remove(f)
        assert not s.query(f)

    def test_occupancy_tracks(self):
        s = small_set()
        for tag in range(1, 4):
            s.insert(fp(0, tag))
        assert s.occupancy == 3

    def test_overflow_when_all_ways_full(self):
        s = small_set(stages=2)
        assert s.insert(fp(0, 1))
        assert s.insert(fp(0, 2))
        assert not s.insert(fp(0, 3))  # both ways of set 0 are taken
        assert s.insert_overflows == 1
        # A different set index still has room.
        assert s.insert(fp(1, 3))

    def test_duplicate_insert_is_idempotent(self):
        s = small_set()
        f = fp(2, 50)
        assert s.insert(f)
        assert s.insert(f)
        assert s.occupancy == 1  # no duplicated tags across stages
        s.remove(f)
        assert not s.query(f)  # single remove clears it fully

    def test_insert_cleans_later_stage_duplicates(self):
        """Figure 9: after an insert succeeds at stage k, later stages remove the tag."""
        s = small_set(stages=3)
        f = fp(0, 9)
        # Manually plant a duplicate in stage 2 (simulating an interleaving).
        index, tag = 0, 9
        s._stages[2].conditional_insert(index, tag)
        assert s.occupancy == 1
        s.insert(f)  # lands in stage 0, cleans stage 2
        assert s.occupancy == 1
        s.remove(f)
        assert not s.query(f)

    def test_fingerprint_with_zero_tag_rejected(self):
        s = small_set()
        with pytest.raises(ValueError):
            s.insert(0x3 << 32)  # tag bits all zero

    def test_out_of_range_fingerprint_rejected(self):
        s = small_set()
        with pytest.raises(ValueError):
            s.query(1 << 49)

    def test_reset_clears_everything(self):
        s = small_set()
        s.insert(fp(0, 1))
        s.remove(fp(0, 1), source="srv", seq=5)
        s.reset()
        assert s.occupancy == 0
        # SEQ filter state cleared too: seq 1 accepted after reset.
        assert s.remove(fp(0, 1), source="srv", seq=1)


class TestRemoveSeqFilter:
    def test_stale_seq_filtered(self):
        s = small_set()
        f = fp(1, 7)
        s.insert(f)
        assert s.remove(f, source="s0", seq=10)
        s.insert(f)
        # A duplicate (resent) remove with an old seq must not clear it.
        assert not s.remove(f, source="s0", seq=10)
        assert s.query(f)

    def test_seq_filter_is_per_source(self):
        s = small_set()
        f = fp(1, 7)
        s.insert(f)
        assert s.remove(f, source="s0", seq=10)
        s.insert(f)
        assert s.remove(f, source="s1", seq=1)  # different source: own counter
        assert not s.query(f)

    def test_seqless_remove_always_executes(self):
        s = small_set()
        f = fp(0, 3)
        s.insert(f)
        assert s.remove(f)
        s.insert(f)
        assert s.remove(f)


class TestConfig:
    def test_capacity(self):
        cfg = StaleSetConfig(num_stages=10, index_bits=17)
        assert cfg.capacity == 1_310_720  # the paper's figure

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            StaleSetConfig(num_stages=0)
        with pytest.raises(ValueError):
            StaleSetConfig(index_bits=0)
        with pytest.raises(ValueError):
            StaleSetConfig(index_bits=49)


# -- property-based: the stale set behaves like a sequential set --------------

fingerprints = st.integers(min_value=0, max_value=(1 << 6) - 1).map(
    lambda n: ((n >> 4) << 32) | ((n & 0xF) + 1)
)
operations = st.lists(
    st.tuples(st.sampled_from(["insert", "remove", "query"]), fingerprints),
    max_size=60,
)


@settings(max_examples=200)
@given(ops=operations)
def test_stale_set_matches_model_set(ops):
    """Sequentially applied ops must match an ideal set, absent overflow.

    Overflow (insert returning False) is the one legal divergence; the model
    then also skips the element.
    """
    s = StaleSet(StaleSetConfig(num_stages=4, index_bits=2))
    model = set()
    for op, f in ops:
        if op == "insert":
            if s.insert(f):
                model.add(f)
        elif op == "remove":
            s.remove(f)
            model.discard(f)
        else:
            assert s.query(f) == (f in model)
    for f in model:
        assert s.query(f)
    assert s.occupancy == len(model)


@settings(max_examples=100)
@given(
    fs=st.lists(fingerprints, min_size=1, max_size=10, unique=True),
)
def test_insert_remove_leaves_empty(fs):
    s = StaleSet(StaleSetConfig(num_stages=10, index_bits=2))
    inserted = [f for f in fs if s.insert(f)]
    for f in inserted:
        s.remove(f)
    assert s.occupancy == 0
    for f in inserted:
        assert not s.query(f)
