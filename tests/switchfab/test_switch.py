"""Unit tests for the programmable switch device and its control plane."""

import pytest

from repro.net import (
    Packet,
    REGULAR_PORT,
    STALESET_PORT,
    StaleSetHeader,
    StaleSetOp,
)
from repro.switchfab import (
    ProgrammableSwitch,
    StaleSetConfig,
    SwitchControlPlane,
)


def make_switch(**kwargs):
    kwargs.setdefault("stale_config", StaleSetConfig(num_stages=2, index_bits=3))
    kwargs.setdefault("fingerprint_owner", lambda fp: "owner-server")
    return ProgrammableSwitch(**kwargs)


def hdr(op, fp=0x1_0000_0001, seq=0):
    return StaleSetHeader(op=op, fingerprint=fp, seq=seq)


def pkt(header, src="server-0", dst="client-0"):
    return Packet(src=src, dst=dst, payload="p", port=STALESET_PORT, header=header)


class TestForwarding:
    def test_regular_packets_untouched(self):
        sw = make_switch()
        p = Packet(src="a", dst="b", payload="x", port=REGULAR_PORT)
        out = sw.process(p)
        assert out == [p]

    def test_none_op_forwards(self):
        sw = make_switch()
        out = sw.process(pkt(hdr(StaleSetOp.NONE)))
        assert len(out) == 1 and out[0].dst == "client-0"


class TestQuery:
    def test_query_miss_ret_zero(self):
        sw = make_switch()
        out = sw.process(pkt(hdr(StaleSetOp.QUERY)))
        assert len(out) == 1
        assert out[0].header.ret == 0

    def test_query_hit_ret_one(self):
        sw = make_switch()
        sw.process(pkt(hdr(StaleSetOp.INSERT)))
        out = sw.process(pkt(hdr(StaleSetOp.QUERY)))
        assert out[0].header.ret == 1


class TestInsert:
    def test_insert_multicasts_to_client_and_server(self):
        sw = make_switch()
        out = sw.process(pkt(hdr(StaleSetOp.INSERT), src="server-3", dst="client-7"))
        assert len(out) == 2
        dsts = sorted(p.dst for p in out)
        assert dsts == ["client-7", "server-3"]
        assert all(p.header.ret == 1 for p in out)

    def test_insert_overflow_redirects_to_owner(self):
        # One stage, index_bits=1: each set has exactly one way.
        sw = ProgrammableSwitch(
            stale_config=StaleSetConfig(num_stages=1, index_bits=1),
            fingerprint_owner=lambda fp: "fallback-server",
        )
        a = hdr(StaleSetOp.INSERT, fp=0x0_0000_0001)
        b = hdr(StaleSetOp.INSERT, fp=0x0_0000_0002)  # same set index, new tag
        assert len(sw.process(pkt(a))) == 2
        out = sw.process(pkt(b, dst="client-9"))
        assert len(out) == 1
        assert out[0].dst == "fallback-server"
        assert out[0].header.ret == 0
        assert sw.redirects == 1

    def test_overflow_without_route_is_an_error(self):
        sw = ProgrammableSwitch(
            stale_config=StaleSetConfig(num_stages=1, index_bits=1),
            fingerprint_owner=None,
        )
        sw.process(pkt(hdr(StaleSetOp.INSERT, fp=0x0_0000_0001)))
        with pytest.raises(RuntimeError, match="no fingerprint"):
            sw.process(pkt(hdr(StaleSetOp.INSERT, fp=0x0_0000_0002)))


class TestRemove:
    def test_remove_clears_and_forwards(self):
        sw = make_switch()
        sw.process(pkt(hdr(StaleSetOp.INSERT)))
        out = sw.process(pkt(hdr(StaleSetOp.REMOVE, seq=1), src="server-0"))
        assert len(out) == 1
        assert sw.process(pkt(hdr(StaleSetOp.QUERY)))[0].header.ret == 0

    def test_duplicate_remove_filtered_by_seq(self):
        sw = make_switch()
        sw.process(pkt(hdr(StaleSetOp.INSERT)))
        sw.process(pkt(hdr(StaleSetOp.REMOVE, seq=5), src="server-0"))
        sw.process(pkt(hdr(StaleSetOp.INSERT)))
        # Retransmitted remove with the same seq must not clear the new entry.
        sw.process(pkt(hdr(StaleSetOp.REMOVE, seq=5), src="server-0"))
        assert sw.process(pkt(hdr(StaleSetOp.QUERY)))[0].header.ret == 1


class TestPipes:
    def test_fingerprints_partition_across_pipes(self):
        sw = ProgrammableSwitch(
            stale_config=StaleSetConfig(num_stages=2, index_bits=3),
            num_pipes=2,
            fingerprint_owner=lambda fp: "o",
            pipe_of_host=lambda host: 0,
        )
        low = 0x0000_0000_0001  # top bit 0 -> pipe 0
        high = (1 << 48) | 0x1  # top bit 1 -> pipe 1
        sw.process(pkt(hdr(StaleSetOp.INSERT, fp=low)))
        sw.process(pkt(hdr(StaleSetOp.INSERT, fp=high)))
        assert sw.pipe(0).occupancy == 1
        assert sw.pipe(1).occupancy == 1

    def test_cross_pipe_packets_are_mirrored(self):
        sw = ProgrammableSwitch(
            stale_config=StaleSetConfig(num_stages=2, index_bits=3),
            num_pipes=2,
            fingerprint_owner=lambda fp: "o",
            pipe_of_host=lambda host: 0,  # every host hangs off pipe 0
        )
        high = (1 << 48) | 0x1  # fingerprint owned by pipe 1
        sw.process(pkt(hdr(StaleSetOp.QUERY, fp=high)))
        assert sw.mirrored == 1

    def test_non_power_of_two_pipes_rejected(self):
        with pytest.raises(ValueError):
            ProgrammableSwitch(num_pipes=3)


class TestControlPlane:
    def test_stats_aggregate(self):
        sw = make_switch()
        cp = SwitchControlPlane(sw)
        sw.process(pkt(hdr(StaleSetOp.INSERT)))
        sw.process(pkt(hdr(StaleSetOp.QUERY)))
        stats = cp.stats()
        assert stats.inserts == 1
        assert stats.queries == 1
        assert stats.occupancy == 1
        assert 0 < stats.load_factor < 1

    def test_failure_resets_and_notifies(self):
        sw = make_switch()
        cp = SwitchControlPlane(sw)
        flushed = []
        cp.on_failure(lambda: flushed.append(True))
        sw.process(pkt(hdr(StaleSetOp.INSERT)))
        cp.fail()
        assert flushed == [True]
        assert sw.occupancy == 0

    def test_install_routes(self):
        sw = ProgrammableSwitch(
            stale_config=StaleSetConfig(num_stages=1, index_bits=1),
        )
        cp = SwitchControlPlane(sw)
        cp.install_routes(lambda fp: "routed-owner")
        sw.process(pkt(hdr(StaleSetOp.INSERT, fp=0x0_0000_0001)))
        out = sw.process(pkt(hdr(StaleSetOp.INSERT, fp=0x0_0000_0002)))
        assert out[0].dst == "routed-owner"
