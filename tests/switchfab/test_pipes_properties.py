"""Property tests on the multi-pipe switch: partitioning is a bijection
onto per-pipe sequential sets, and SEQ filtering is per (source, pipe)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import FINGERPRINT_BITS, Packet, STALESET_PORT, StaleSetHeader, StaleSetOp
from repro.switchfab import ProgrammableSwitch, StaleSetConfig

fingerprints = st.integers(min_value=0, max_value=(1 << 10) - 1).map(
    lambda n: ((n >> 5) << 32) | ((n & 0x1F) + 1) | ((n % 2) << (FINGERPRINT_BITS - 1))
)


def make_switch(num_pipes=2):
    return ProgrammableSwitch(
        stale_config=StaleSetConfig(num_stages=6, index_bits=6),
        num_pipes=num_pipes,
        fingerprint_owner=lambda fp: "owner",
        pipe_of_host=lambda host: 0,
    )


def insert(sw, fp, src="s0", dst="c0"):
    return sw.process(
        Packet(src=src, dst=dst, payload="p", port=STALESET_PORT,
               header=StaleSetHeader(op=StaleSetOp.INSERT, fingerprint=fp))
    )


def query(sw, fp):
    out = sw.process(
        Packet(src="s0", dst="c0", payload="p", port=STALESET_PORT,
               header=StaleSetHeader(op=StaleSetOp.QUERY, fingerprint=fp))
    )
    return out[0].header.ret == 1


def remove(sw, fp, src="s0", seq=None):
    header = StaleSetHeader(op=StaleSetOp.REMOVE, fingerprint=fp, seq=seq or 0)
    sw.process(Packet(src=src, dst="c0", payload="p", port=STALESET_PORT, header=header))


@settings(max_examples=100)
@given(ops=st.lists(st.tuples(st.sampled_from(["i", "r", "q"]), fingerprints), max_size=40))
def test_two_pipe_switch_matches_model(ops):
    sw = make_switch(num_pipes=2)
    model = set()
    seq = 0
    for kind, fp in ops:
        if kind == "i":
            out = insert(sw, fp)
            if out[0].header.ret == 1:
                model.add(fp)
        elif kind == "r":
            seq += 1
            remove(sw, fp, seq=seq)
            model.discard(fp)
        else:
            assert query(sw, fp) == (fp in model)
    for fp in model:
        assert query(sw, fp)


@settings(max_examples=60)
@given(fp=fingerprints, s1=st.integers(1, 100), s2=st.integers(1, 100))
def test_seq_filter_is_per_source(fp, s1, s2):
    sw = make_switch(num_pipes=1)
    insert(sw, fp)
    remove(sw, fp, src="server-A", seq=s1)
    assert not query(sw, fp)
    insert(sw, fp)
    # A different source's counter is independent: any seq works.
    remove(sw, fp, src="server-B", seq=s2)
    assert not query(sw, fp)
    insert(sw, fp)
    # But a stale seq from a known source is filtered.
    remove(sw, fp, src="server-A", seq=s1)
    assert query(sw, fp)
