"""Unit tests for the in-switch hot-dentry cache (DESIGN.md §15)."""

import pytest

from repro.net import (
    Packet,
    RpcResponse,
    STALESET_PORT,
    StaleSetHeader,
    StaleSetOp,
)
from repro.switchfab import (
    DentryCache,
    DentryCacheConfig,
    ProgrammableSwitch,
    StaleSetConfig,
    SwitchControlPlane,
)

# Fingerprints sharing one cache set index (index_bits=2 below): the
# index is bits [32 : 32+index_bits], the tag is the low 32 bits.
FP_A = (0x0 << 32) | 0x1111
FP_B = (0x0 << 32) | 0x2222
FP_C = (0x0 << 32) | 0x3333
# Same tag as FP_A, different full fingerprint -> index/tag alias.
FP_A_ALIAS = (0x4 << 32) | 0x1111  # index (0x4 & 0b11) = 0 with index_bits=2


def make_cache(num_stages=2, index_bits=2):
    return DentryCache(DentryCacheConfig(num_stages=num_stages, index_bits=index_bits))


class TestDentryCacheUnit:
    def test_miss_then_fill_then_hit(self):
        c = make_cache()
        assert c.lookup(FP_A) is None
        c.fill(FP_A, {"id": 7})
        assert c.lookup(FP_A) == {"id": 7}
        assert (c.hits, c.misses, c.fills) == (1, 1, 1)

    def test_fill_refreshes_in_place(self):
        c = make_cache()
        c.fill(FP_A, "old")
        c.fill(FP_A, "new")
        assert c.lookup(FP_A) == "new"
        assert c.occupancy == 1  # refreshed, not duplicated

    def test_ways_spread_across_stages(self):
        c = make_cache(num_stages=2)
        c.fill(FP_A, "a")
        c.fill(FP_B, "b")  # same index, second way
        assert c.lookup(FP_A) == "a"
        assert c.lookup(FP_B) == "b"
        assert c.occupancy == 2

    def test_replacement_when_all_ways_full(self):
        c = make_cache(num_stages=2)
        c.fill(FP_A, "a")
        c.fill(FP_B, "b")
        c.fill(FP_C, "c")  # both ways full -> replaces stage 0 resident
        assert c.lookup(FP_C) == "c"
        assert c.evictions == 1
        # Exactly one of the earlier residents was displaced.
        survivors = [fp for fp in (FP_A, FP_B) if c.lookup(fp) is not None]
        assert len(survivors) == 1

    def test_alias_guard_no_false_hit(self):
        # Same register index and tag, different full fingerprint: the
        # value slot stores the full fingerprint, so the alias must miss.
        c = make_cache()
        c.fill(FP_A, "a")
        assert c.lookup(FP_A_ALIAS) is None

    def test_invalidate_drops_line(self):
        c = make_cache()
        c.fill(FP_A, "a")
        assert c.invalidate(FP_A) is True
        assert c.lookup(FP_A) is None
        assert c.invalidate(FP_A) is False  # already gone

    def test_invalidate_is_conservative_on_aliases(self):
        # Invalidating the alias clears the tag-matching register even
        # though the full fingerprints differ: spurious eviction is safe,
        # a stale line is not.
        c = make_cache()
        c.fill(FP_A, "a")
        assert c.invalidate(FP_A_ALIAS) is True
        assert c.lookup(FP_A) is None

    def test_reset_cold_starts(self):
        c = make_cache()
        c.fill(FP_A, "a")
        c.fill(FP_B, "b")
        c.reset()
        assert c.occupancy == 0
        assert c.lookup(FP_A) is None

    def test_tag_zero_rejected(self):
        c = make_cache()
        with pytest.raises(ValueError, match="tag 0"):
            c.lookup(0x5_0000_0000)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DentryCacheConfig(num_stages=0)
        with pytest.raises(ValueError):
            DentryCacheConfig(index_bits=0)
        assert DentryCacheConfig(num_stages=4, index_bits=10).capacity == 4096


# ---------------------------------------------------------------------------
# switch-level behaviour
# ---------------------------------------------------------------------------


def make_switch(**kwargs):
    kwargs.setdefault("stale_config", StaleSetConfig(num_stages=2, index_bits=3))
    kwargs.setdefault("cache_config", DentryCacheConfig(num_stages=2, index_bits=2))
    kwargs.setdefault("fingerprint_owner", lambda fp: "owner-server")
    return ProgrammableSwitch(**kwargs)


def hdr(op, fp=FP_A):
    return StaleSetHeader(op=op, fingerprint=fp)


def pkt(header, payload="p", src="client-0", dst="server-0"):
    return Packet(src=src, dst=dst, payload=payload, port=STALESET_PORT, header=header)


def fill_via_packet(sw, fp, value, rpc_id=1):
    """Run a server reply carrying a FILL header through the switch."""
    reply = pkt(
        hdr(StaleSetOp.FILL, fp),
        payload=RpcResponse(rpc_id=rpc_id, value=value),
        src="server-0",
        dst="client-0",
    )
    return sw.process(reply)


class TestSwitchLookup:
    def test_miss_forwards_to_server(self):
        sw = make_switch()
        out = sw.process(pkt(hdr(StaleSetOp.LOOKUP), payload=object()))
        assert len(out) == 1
        assert out[0].dst == "server-0"
        assert sw.cache_replies == 0

    def test_hit_fabricates_consumed_reply(self):
        sw = make_switch()
        fill_via_packet(sw, FP_A, {"size": 42})
        request = pkt(
            hdr(StaleSetOp.LOOKUP),
            payload=RpcResponse(rpc_id=99, value=None),  # any .rpc_id carrier
        )
        out = sw.process(request)
        assert len(out) == 1  # request consumed, only the reply leaves
        reply = out[0]
        assert reply.dst == "client-0"  # turned around to the requester
        assert reply.header.ret == 1  # marked switch-served
        assert isinstance(reply.payload, RpcResponse)
        assert reply.payload.rpc_id == 99
        assert reply.payload.value == {"size": 42}
        assert sw.cache_replies == 1

    def test_lookup_without_cache_forwards(self):
        sw = make_switch(cache_config=None)
        out = sw.process(pkt(hdr(StaleSetOp.LOOKUP), payload=object()))
        assert len(out) == 1 and out[0].dst == "server-0"


class TestSwitchFill:
    def test_fill_installs_and_forwards(self):
        sw = make_switch()
        out = fill_via_packet(sw, FP_A, "v")
        assert len(out) == 1 and out[0].dst == "client-0"  # reply continues
        assert sw.caches()[0].lookup(FP_A) == "v"

    def test_error_replies_never_cached(self):
        sw = make_switch()
        reply = pkt(
            hdr(StaleSetOp.FILL, FP_A),
            payload=RpcResponse(rpc_id=1, value=None, error=("ENOENT", "x")),
            src="server-0",
            dst="client-0",
        )
        out = sw.process(reply)
        assert len(out) == 1  # still forwarded to the client
        assert sw.cache_occupancy == 0

    def test_non_rpc_payload_not_cached(self):
        sw = make_switch()
        out = sw.process(pkt(hdr(StaleSetOp.FILL, FP_A), payload="raw"))
        assert len(out) == 1
        assert sw.cache_occupancy == 0


class TestSwitchEvict:
    def test_evict_consumed_and_invalidates(self):
        sw = make_switch()
        fill_via_packet(sw, FP_A, "v")
        out = sw.process(pkt(hdr(StaleSetOp.EVICT, FP_A), payload=None))
        assert out == []  # the switch is the EVICT's destination
        assert sw.caches()[0].lookup(FP_A) is None

    def test_staleset_insert_evicts_matching_line(self):
        sw = make_switch()
        fill_via_packet(sw, FP_A, "v")
        out = sw.process(pkt(hdr(StaleSetOp.INSERT, FP_A), src="server-0"))
        assert len(out) == 2  # the usual INSERT multicast still happens
        assert sw.caches()[0].lookup(FP_A) is None

    def test_insert_leaves_other_lines_alone(self):
        sw = make_switch()
        fill_via_packet(sw, FP_B, "v")
        sw.process(pkt(hdr(StaleSetOp.INSERT, FP_A), src="server-0"))
        assert sw.caches()[0].lookup(FP_B) == "v"


class TestSwitchLifecycle:
    def test_reset_cold_starts_cache(self):
        sw = make_switch()
        fill_via_packet(sw, FP_A, "v")
        sw.process(pkt(hdr(StaleSetOp.INSERT, FP_B), src="server-0"))
        sw.reset()
        assert sw.cache_occupancy == 0
        assert sw.occupancy == 0
        # Post-reset the datapath works again from cold.
        fill_via_packet(sw, FP_A, "v2")
        assert sw.caches()[0].lookup(FP_A) == "v2"

    def test_flush_cache_preserves_stale_set(self):
        sw = make_switch()
        fill_via_packet(sw, FP_A, "v")
        sw.process(pkt(hdr(StaleSetOp.INSERT, FP_B), src="server-0"))
        sw.flush_cache()
        assert sw.cache_occupancy == 0
        assert sw.occupancy == 1  # stale-set bit survives
        assert sw.cache_flushes == 1

    def test_stats_carry_cache_counters(self):
        sw = make_switch()
        cp = SwitchControlPlane(sw)
        sw.process(pkt(hdr(StaleSetOp.LOOKUP), payload=object()))  # miss
        fill_via_packet(sw, FP_A, "v")
        sw.process(
            pkt(hdr(StaleSetOp.LOOKUP), payload=RpcResponse(rpc_id=1, value=None))
        )  # hit
        stats = cp.stats()
        assert stats.cache_hits == 1
        assert stats.cache_misses == 1
        assert stats.cache_fills == 1
        assert stats.cache_occupancy == 1
        assert stats.cache_capacity == 8  # 2 stages x 2^2
        assert stats.cache_hit_rate == 0.5

    def test_disabled_cache_reports_zero_capacity(self):
        sw = make_switch(cache_config=None)
        stats = SwitchControlPlane(sw).stats()
        assert stats.cache_capacity == 0
        assert stats.cache_hit_rate == 0.0
