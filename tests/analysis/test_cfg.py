"""CFG construction: hand-drawn edge lists for the corner cases.

Each test parses a small function, builds its CFG, and asserts the full
``edge_lines()`` set — ``(src_line, dst_line, kind)`` triples with the
sentinels ``ENTRY_LINE``/``EXIT_LINE``/``RAISE_LINE`` — against an edge
list drawn by hand from the construction rules in DESIGN.md §17.
Sources put ``def`` on line 2 so statement line numbers in the
assertions match what you count in the snippet.
"""

import ast
import textwrap

from repro.analysis.cfg import (
    ENTRY_LINE,
    EXIT_LINE,
    RAISE_LINE,
    build_cfg,
    stmt_yields,
)


def cfg_of(source, index=0):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(tree.body[index])


class TestTryFinallyWithYield:
    SOURCE = """
    def gen():
        try:
            yield step()
        finally:
            cleanup()
    """

    def test_edges(self):
        cfg = cfg_of(self.SOURCE)
        assert cfg.edge_lines() == {
            (ENTRY_LINE, 4, "next"),      # entry -> yield node
            (4, 4, "resume"),             # yield -> resume statement
            (4, 6, "except"),             # step() may raise -> finally
            (4, 6, "next"),               # clean body -> finally
            (6, 6, "next"),               # finally anchor -> cleanup()
            (6, RAISE_LINE, "finally"),   # unhandled exception escapes
            (6, EXIT_LINE, "next"),       # normal completion
        }

    def test_yield_node_present(self):
        cfg = cfg_of(self.SOURCE)
        assert [n.lineno for n in cfg.yield_nodes()] == [4]


class TestReturnThroughFinally:
    SOURCE = """
    def gen(lock):
        yield lock.acquire()
        try:
            return use()
        finally:
            lock.release()
    """

    def test_edges(self):
        cfg = cfg_of(self.SOURCE)
        assert cfg.edge_lines() == {
            (ENTRY_LINE, 3, "next"),      # entry -> yield node
            (3, 3, "resume"),             # yield -> its statement
            (3, 5, "next"),               # into the try body
            (5, 7, "except"),             # use() may raise -> finally
            (5, 7, "return"),             # return routes THROUGH finally
            (7, 7, "next"),               # finally anchor -> release()
            (7, EXIT_LINE, "finally"),    # ...then completes the return
            (7, RAISE_LINE, "finally"),   # ...or keeps propagating
        }
        # The return never reaches the exit directly: every path to the
        # exit passes the finally body (that ordering is what lets RL101
        # see a recycle-in-finally on the return path).
        direct = [(s, d, k) for (s, d, k) in cfg.edge_lines()
                  if d == EXIT_LINE and s != 7]
        assert direct == []


class TestWhileElseWithBreak:
    SOURCE = """
    def f(i):
        i = start()
        while cond(i):
            if stop(i):
                break
            i = advance(i)
        else:
            finish()
        return i
    """

    def test_edges(self):
        cfg = cfg_of(self.SOURCE)
        assert cfg.edge_lines() == {
            (ENTRY_LINE, 3, "next"),
            (3, 4, "next"),
            (4, 5, "true"),               # loop body entered
            (5, 6, "true"),               # break taken
            (5, 7, "false"),              # loop body continues
            (7, 4, "loop"),               # back edge
            (4, 9, "false"),              # condition falsified -> else
            (9, 10, "next"),              # else falls through to return
            (6, 10, "break"),             # break BYPASSES the else arm
            (10, EXIT_LINE, "return"),
        }


class TestNestedGenerators:
    SOURCE = """
    def outer():
        def inner():
            yield make()
        yield from inner()
    """

    def test_outer_treats_inner_as_opaque(self):
        cfg = cfg_of(self.SOURCE)
        assert cfg.edge_lines() == {
            (ENTRY_LINE, 3, "next"),      # 'def inner' is one opaque node
            (3, 5, "next"),
            (5, 5, "resume"),             # the outer's own yield-from
            (5, EXIT_LINE, "next"),
        }
        # Only the outer function's suspension appears — not inner's.
        assert [n.lineno for n in cfg.yield_nodes()] == [5]

    def test_inner_gets_its_own_cfg(self):
        tree = ast.parse(textwrap.dedent(self.SOURCE))
        inner = tree.body[0].body[0]
        cfg = build_cfg(inner)
        assert cfg.edge_lines() == {
            (ENTRY_LINE, 4, "next"),
            (4, 4, "resume"),
            (4, EXIT_LINE, "next"),
        }


class TestComprehensionScopes:
    SOURCE = """
    def f(xs):
        ys = [g(x) for x in xs]
        return sorted(ys)
    """

    def test_comprehension_is_one_statement(self):
        cfg = cfg_of(self.SOURCE)
        assert cfg.edge_lines() == {
            (ENTRY_LINE, 3, "next"),
            (3, 4, "next"),
            (4, EXIT_LINE, "return"),
        }
        assert cfg.yield_nodes() == []

    def test_stmt_yields_skips_lambda_bodies(self):
        # stmt_yields must not look through nested def/lambda scopes.
        src = textwrap.dedent("""
        def f():
            cb = lambda: (yield 1)
            yield 2
        """)
        fn = ast.parse(src).body[0]
        assert [y.value.value for y in stmt_yields(fn.body[0])] == []
        assert len(stmt_yields(fn.body[1])) == 1


class TestWithEarlyReturn:
    SOURCE = """
    def f(res):
        with res.open() as h:
            if bad(h):
                return None
            work(h)
        return done()
    """

    def test_edges(self):
        cfg = cfg_of(self.SOURCE)
        # The synthetic with-exit node carries the with statement's line
        # (3); both the early return and the normal fall-through pass
        # through it — that is the __exit__ call.
        assert cfg.edge_lines() == {
            (ENTRY_LINE, 3, "next"),
            (3, 4, "next"),               # with head -> if
            (4, 5, "true"),               # early return...
            (5, 3, "return"),             # ...routes through with-exit
            (4, 6, "false"),
            (6, 3, "next"),               # normal body end -> with-exit
            (3, EXIT_LINE, "finally"),    # with-exit completes the return
            (3, 7, "next"),               # with-exit -> code after block
            (7, EXIT_LINE, "return"),
        }


class TestLoopYieldResume:
    SOURCE = """
    def gen(lock, items):
        for item in items:
            yield lock.acquire()
            lock.release()
    """

    def test_yield_in_loop_body(self):
        cfg = cfg_of(self.SOURCE)
        assert cfg.edge_lines() == {
            (ENTRY_LINE, 3, "next"),
            (3, 4, "true"),               # loop body -> yield node
            (4, 4, "resume"),             # suspension -> resume stmt
            (4, 5, "next"),
            (5, 3, "loop"),               # back edge
            (3, EXIT_LINE, "false"),      # iterator exhausted
        }

    def test_multiple_yields_in_one_statement_chain(self):
        src = """
        def gen(a, b):
            total = (yield a.get()) + (yield b.get())
        """
        cfg = cfg_of(src)
        ys = cfg.yield_nodes()
        assert len(ys) == 2
        # Suspensions chain in evaluation order before the binding runs.
        assert cfg.edge_lines() == {
            (ENTRY_LINE, 3, "next"),      # entry -> first yield
            (3, 3, "resume"),             # first -> second, second -> stmt
            (3, EXIT_LINE, "next"),
        }
        first, second = ys
        assert (second.idx, "resume") in cfg.succs[first.idx]


class TestRaiseOutsideTry:
    SOURCE = """
    def f(x):
        if x:
            raise ValueError(x)
        return ok(x)
    """

    def test_explicit_raise_reaches_raise_exit(self):
        cfg = cfg_of(self.SOURCE)
        assert cfg.edge_lines() == {
            (ENTRY_LINE, 3, "next"),
            (3, 4, "true"),
            (4, RAISE_LINE, "raise"),     # explicit raise only...
            (3, 5, "false"),
            (5, EXIT_LINE, "return"),     # ...ok(x) gets no implicit edge
        }
