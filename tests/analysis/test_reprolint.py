"""reprolint: each rule catches its seeded violation, allowlists work."""

import textwrap

from repro.analysis import Finding, format_finding, lint_paths
from repro.analysis.reprolint import RULES, lint_file


def _write(tmp_path, name, source):
    p = tmp_path / name
    p.write_text(textwrap.dedent(source), encoding="utf-8")
    return p


def _rules(findings):
    return [f.rule for f in findings]


class TestRL001WallClock:
    def test_time_and_random_module_calls_flagged(self, tmp_path):
        p = _write(
            tmp_path,
            "mod.py",
            """
            import time
            import random

            def handler(sim):
                start = time.monotonic()
                jitter = random.random()
                return start + jitter
            """,
        )
        findings = lint_file(p)
        assert _rules(findings) == ["RL001", "RL001"]
        assert "determinism" in findings[0].message

    def test_from_imports_and_datetime_now_flagged(self, tmp_path):
        p = _write(
            tmp_path,
            "mod.py",
            """
            from time import monotonic
            from datetime import datetime

            def stamp():
                return monotonic(), datetime.now()
            """,
        )
        assert _rules(lint_file(p)) == ["RL001", "RL001"]

    def test_seeded_rng_helper_is_clean(self, tmp_path):
        p = _write(
            tmp_path,
            "mod.py",
            """
            from repro.sim.rand import make_rng

            def pick(seed):
                return make_rng(seed, "pick").randrange(10)
            """,
        )
        assert lint_file(p) == []

    def test_bench_paths_are_exempt(self, tmp_path):
        bench = tmp_path / "bench"
        bench.mkdir()
        p = _write(
            bench,
            "harness.py",
            """
            import time

            def wall():
                return time.perf_counter()
            """,
        )
        assert lint_file(p) == []


class TestRL002PrivateAccess:
    def test_cross_module_private_attribute_flagged(self, tmp_path):
        p = _write(
            tmp_path,
            "mod.py",
            """
            def peek(server):
                return server._dir_index
            """,
        )
        findings = lint_file(p)
        assert _rules(findings) == ["RL002"]
        assert "public accessor" in findings[0].message

    def test_self_and_locally_defined_privates_are_clean(self, tmp_path):
        p = _write(
            tmp_path,
            "mod.py",
            """
            class Box:
                def __init__(self):
                    self._items = []

                def push(self, x):
                    self._items.append(x)

            def drain(box):
                # _items is defined by this module's own class: allowed.
                return box._items
            """,
        )
        assert lint_file(p) == []

    def test_dunder_access_is_clean(self, tmp_path):
        p = _write(
            tmp_path,
            "mod.py",
            """
            def name_of(obj):
                return type(obj).__name__
            """,
        )
        assert lint_file(p) == []


class TestRL003BareExcept:
    def test_bare_except_flagged(self, tmp_path):
        p = _write(
            tmp_path,
            "mod.py",
            """
            def risky(op):
                try:
                    op()
                except:
                    pass
            """,
        )
        findings = lint_file(p)
        assert _rules(findings) == ["RL003"]
        assert "Interrupt" in findings[0].message

    def test_swallowing_baseexception_flagged(self, tmp_path):
        p = _write(
            tmp_path,
            "mod.py",
            """
            def risky(op):
                try:
                    op()
                except BaseException:
                    pass
            """,
        )
        assert _rules(lint_file(p)) == ["RL003"]

    def test_reraising_baseexception_is_clean(self, tmp_path):
        p = _write(
            tmp_path,
            "mod.py",
            """
            def risky(op, log):
                try:
                    op()
                except BaseException:
                    log()
                    raise
                except Exception as exc:
                    log(exc)
            """,
        )
        assert lint_file(p) == []


class TestRL004UnadoptedGenerator:
    def test_bare_generator_call_flagged(self, tmp_path):
        p = _write(
            tmp_path,
            "mod.py",
            """
            def workflow(sim):
                yield sim.timeout(1)

            def handler(sim):
                workflow(sim)
            """,
        )
        findings = lint_file(p)
        assert _rules(findings) == ["RL004"]
        assert "never" in findings[0].message

    def test_driven_and_spawned_generators_are_clean(self, tmp_path):
        p = _write(
            tmp_path,
            "mod.py",
            """
            def workflow(sim):
                yield sim.timeout(1)

            def outer(sim):
                sim.spawn(workflow(sim))
                result = yield from workflow(sim)
                return result
            """,
        )
        assert lint_file(p) == []

    def test_self_method_generator_call_flagged(self, tmp_path):
        p = _write(
            tmp_path,
            "mod.py",
            """
            class Server:
                def _work(self):
                    yield 1

                def handle(self):
                    self._work()
            """,
        )
        assert _rules(lint_file(p)) == ["RL004"]


class TestRL005PoolProtocol:
    def test_use_after_recycle_flagged(self, tmp_path):
        p = _write(
            tmp_path,
            "mod.py",
            """
            def respond(p, recycle_packet):
                recycle_packet(p)
                return p.payload
            """,
        )
        findings = lint_file(p)
        assert _rules(findings) == ["RL005"]
        assert "after recycle" in findings[0].message

    def test_double_recycle_flagged(self, tmp_path):
        p = _write(
            tmp_path,
            "mod.py",
            """
            def drop(p, recycle_packet):
                recycle_packet(p)
                recycle_packet(p)
            """,
        )
        findings = lint_file(p)
        assert _rules(findings) == ["RL005"]
        assert "double recycle" in findings[0].message

    def test_rebinding_clears_the_taint(self, tmp_path):
        p = _write(
            tmp_path,
            "mod.py",
            """
            def loop(alloc_packet, recycle_packet):
                p = alloc_packet()
                recycle_packet(p)
                p = alloc_packet()
                return p.src
            """,
        )
        assert lint_file(p) == []

    def test_copy_before_recycle_is_clean(self, tmp_path):
        p = _write(
            tmp_path,
            "mod.py",
            """
            def respond(p, recycle_packet):
                value = p.payload
                recycle_packet(p)
                return value
            """,
        )
        assert lint_file(p) == []


class TestRL006SlotlessHotClass:
    def _hot_dir(self, tmp_path):
        d = tmp_path / "core" / "server"
        d.mkdir(parents=True)
        return d

    def test_slotless_class_in_hot_module_flagged(self, tmp_path):
        p = _write(
            self._hot_dir(tmp_path),
            "ops.py",
            """
            class OpState:
                def __init__(self):
                    self.count = 0
            """,
        )
        findings = lint_file(p)
        assert _rules(findings) == ["RL006"]
        assert "__slots__" in findings[0].message

    def test_slotted_class_and_empty_slots_mixin_are_clean(self, tmp_path):
        p = _write(
            self._hot_dir(tmp_path),
            "ops.py",
            """
            class OpState:
                __slots__ = ("count",)

                def __init__(self):
                    self.count = 0


            class OpsMixin:
                __slots__ = ()
            """,
        )
        assert lint_file(p) == []

    def test_exception_and_enum_classes_exempt(self, tmp_path):
        p = _write(
            self._hot_dir(tmp_path),
            "errors.py",
            """
            import enum


            class ShardError(ValueError):
                pass


            class Phase(enum.IntEnum):
                DRAIN = 0
            """,
        )
        assert lint_file(p) == []

    def test_cold_module_not_flagged(self, tmp_path):
        p = _write(
            tmp_path,
            "config.py",
            """
            class Settings:
                def __init__(self):
                    self.retries = 3
            """,
        )
        assert lint_file(p) == []

    def test_sim_kernel_suffix_is_hot(self, tmp_path):
        d = tmp_path / "sim"
        d.mkdir()
        p = _write(
            d,
            "kernel.py",
            """
            class PendingEvent:
                def __init__(self):
                    self.when = 0.0
            """,
        )
        assert _rules(lint_file(p)) == ["RL006"]

    def test_allow_comment_suppresses_cold_singleton(self, tmp_path):
        p = _write(
            self._hot_dir(tmp_path),
            "boot.py",
            """
            class Bootstrapper:  # reprolint: allow[RL006] built once at boot
                def __init__(self):
                    self.ready = False
            """,
        )
        assert lint_file(p) == []


class TestSuppressionAndOutput:
    def test_allow_comment_suppresses_named_rule(self, tmp_path):
        p = _write(
            tmp_path,
            "mod.py",
            """
            def peek(server):
                return server._heap  # reprolint: allow[private-access] hot path
            """,
        )
        assert lint_file(p) == []

    def test_allow_star_suppresses_everything_on_the_line(self, tmp_path):
        p = _write(
            tmp_path,
            "mod.py",
            """
            import time

            def wall(server):
                return time.monotonic(), server._heap  # reprolint: allow[*] bench-only
            """,
        )
        assert lint_file(p) == []

    def test_allow_comment_does_not_leak_to_other_lines(self, tmp_path):
        p = _write(
            tmp_path,
            "mod.py",
            """
            def peek(server):
                a = server._heap  # reprolint: allow[private-access] ok here
                return server._heap
            """,
        )
        assert _rules(lint_file(p)) == ["RL002"]

    def test_format_finding_layout(self, tmp_path):
        p = _write(
            tmp_path,
            "mod.py",
            """
            def peek(server):
                return server._heap
            """,
        )
        (finding,) = lint_file(p)
        assert isinstance(finding, Finding)
        text = format_finding(finding)
        assert text.startswith(f"{p}:3:")
        assert "RL002[private-access]" in text

    def test_lint_paths_walks_directories(self, tmp_path):
        _write(tmp_path, "clean.py", "x = 1\n")
        _write(
            tmp_path,
            "dirty.py",
            """
            def peek(server):
                return server._heap
            """,
        )
        sub = tmp_path / "sub"
        sub.mkdir()
        _write(
            sub,
            "nested.py",
            """
            def risky(op):
                try:
                    op()
                except:
                    pass
            """,
        )
        findings = lint_paths([tmp_path])
        assert sorted(_rules(findings)) == ["RL002", "RL003"]

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        p = _write(tmp_path, "broken.py", "def oops(:\n")
        findings = lint_file(p)
        assert len(findings) == 1
        assert "syntax error" in findings[0].message

    def test_rule_table_is_complete(self):
        assert set(RULES) == {
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007",
        }


class TestRL007DeadSuppression:
    def test_dead_allow_comment_is_reported(self, tmp_path):
        p = _write(
            tmp_path,
            "mod.py",
            """
            def add(a, b):
                return a + b  # reprolint: allow[RL001] was wall-clock once
            """,
        )
        findings = lint_file(p)
        assert _rules(findings) == ["RL007"]
        assert "allow[RL001]" in findings[0].message

    def test_live_suppression_is_not_dead(self, tmp_path):
        p = _write(
            tmp_path,
            "mod.py",
            """
            import time

            def wall():
                return time.monotonic()  # reprolint: allow[RL001] boot-time only
            """,
        )
        assert lint_file(p) == []

    def test_blanket_allow_star_is_not_audited(self, tmp_path):
        p = _write(
            tmp_path,
            "mod.py",
            """
            def add(a, b):
                return a + b  # reprolint: allow[*] grandfathered
            """,
        )
        assert lint_file(p) == []

    def test_prose_mention_in_docstring_is_not_audited(self, tmp_path):
        p = _write(
            tmp_path,
            "mod.py",
            '''
            def doc():
                """Use '# reprolint: allow[RL001] why' to suppress."""
                return 1
            ''',
        )
        assert lint_file(p) == []

    def test_flow_rule_allows_are_not_lints_business(self, tmp_path):
        # RL101+ suppressions are audited by `repro flow`, not the lint.
        p = _write(
            tmp_path,
            "mod.py",
            """
            def add(a, b):
                return a + b  # reprolint: allow[RL102] flow-rule territory
            """,
        )
        assert lint_file(p) == []


class TestRepoIsClean:
    def test_src_tree_has_no_findings(self):
        from pathlib import Path

        src = Path(__file__).resolve().parents[2] / "src"
        findings = lint_paths([src])
        assert findings == [], "\n".join(format_finding(f) for f in findings)
