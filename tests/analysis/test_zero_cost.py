"""The analysis hooks are zero-cost residue when disabled (DESIGN.md §12).

These tests pin the *mechanism* of the perf guarantee: a detached
simulator carries only a ``tracer is None`` test in the resource paths
and spawns the stock :class:`Process`; an uninstalled sanitizer leaves
the packet pools as plain freelists.
"""

from repro.analysis import SimTracer, install_pool_sanitizer, uninstall_pool_sanitizer
from repro.net.packet import alloc_packet, pool_sanitizer, recycle_packet
from repro.sim import Lock, Simulator
from repro.sim.kernel import Process


class TestTracerDetached:
    def test_fresh_simulator_has_no_tracer(self):
        sim = Simulator()
        assert sim.tracer is None
        # The process class is the *class attribute* default: no per-
        # instance slot is paid until a tracer attaches.
        assert "_process_cls" not in sim.__dict__
        assert Simulator._process_cls is Process

    def test_untraced_spawn_uses_stock_process(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1)

        p = sim.spawn(proc(), name="p")
        assert type(p) is Process
        sim.run()

    def test_attach_swaps_process_class_detach_restores_it(self):
        sim = Simulator()
        tracer = SimTracer(capture_stacks=False)
        tracer.attach(sim)
        assert sim.tracer is tracer
        assert sim._process_cls is not Process

        def traced():
            yield sim.timeout(1)

        p = sim.spawn(traced(), name="traced")
        assert type(p) is not Process  # _TracedProcess subclass
        sim.run()
        tracer.detach()

        assert sim.tracer is None
        assert "_process_cls" not in sim.__dict__

        def plain():
            yield sim.timeout(1)

        q = sim.spawn(plain(), name="plain")
        assert type(q) is Process
        sim.run()

    def test_detached_run_records_nothing(self):
        sim = Simulator()
        tracer = SimTracer()
        tracer.attach(sim)
        tracer.detach()
        lock = Lock(sim, name="L")

        def worker():
            yield lock.acquire()
            yield sim.timeout(1)
            lock.release()

        sim.spawn(worker(), name="w")
        sim.run()
        assert tracer.lock_events == []
        assert tracer.order_edges == {}

    def test_double_attach_is_rejected(self):
        sim = Simulator()
        tracer = SimTracer()
        tracer.attach(sim)
        try:
            import pytest

            with pytest.raises(RuntimeError):
                tracer.attach(Simulator())
        finally:
            tracer.detach()


class TestSanitizerUninstalled:
    def test_uninstalled_pools_are_plain_freelists(self):
        uninstall_pool_sanitizer()
        try:
            assert pool_sanitizer() is None
            p = alloc_packet("a", "b", None)
            recycle_packet(p)
            q = alloc_packet("c", "d", None)
            assert q is p  # straight pool pop, no poisoning or metadata
            assert q.src == "c"
            recycle_packet(q)
        finally:
            install_pool_sanitizer()

    def test_install_returns_the_active_sanitizer(self):
        san = install_pool_sanitizer()
        assert pool_sanitizer() is san
