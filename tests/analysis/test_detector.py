"""Dynamic race & lock-order detector: synthetic cycles and races."""

from repro.analysis import SimTracer, analyze_report, lock_order_cycles, race_findings
from repro.sim import Lock, RWLock, Simulator


def _hold_then(sim, first, second, label):
    """Acquire *first*, wait, acquire *second*, wait, release both."""
    yield first.acquire()
    yield sim.timeout(1)
    yield second.acquire()
    yield sim.timeout(1)
    second.release()
    first.release()


class TestLockOrderCycles:
    def test_synthetic_two_lock_cycle_is_reported(self):
        sim = Simulator()
        tracer = SimTracer()
        tracer.attach(sim)
        a = Lock(sim, name="lock-A")
        b = Lock(sim, name="lock-B")
        sim.spawn(_hold_then(sim, a, b, "ab"), name="proc-ab")

        def later():
            # Start after proc-ab finished: no actual deadlock occurs,
            # but the opposite acquisition order is still a latent cycle.
            yield sim.timeout(10)
            yield from _hold_then(sim, b, a, "ba")

        sim.spawn(later(), name="proc-ba")
        sim.run()
        tracer.detach()

        cycles = lock_order_cycles(tracer)
        assert len(cycles) == 1
        labels = set(cycles[0]["labels"])
        assert labels == {"lock-A", "lock-B"}
        procs = {w["proc"] for w in cycles[0]["witnesses"]}
        assert procs == {"proc-ab", "proc-ba"}

    def test_report_carries_names_times_and_stacks(self):
        sim = Simulator()
        tracer = SimTracer()
        tracer.attach(sim)
        a = Lock(sim, name="lock-A")
        b = Lock(sim, name="lock-B")
        sim.spawn(_hold_then(sim, a, b, "ab"), name="proc-ab")

        def later():
            yield sim.timeout(10)
            yield from _hold_then(sim, b, a, "ba")

        sim.spawn(later(), name="proc-ba")
        sim.run()
        tracer.detach()

        report = analyze_report(tracer)
        assert "lock-order cycles: 1" in report
        assert "proc-ab" in report and "proc-ba" in report
        assert "t=" in report
        assert "test_detector.py" in report  # acquisition stack frames

    def test_consistent_order_is_clean(self):
        sim = Simulator()
        tracer = SimTracer()
        tracer.attach(sim)
        a = Lock(sim, name="lock-A")
        b = Lock(sim, name="lock-B")
        sim.spawn(_hold_then(sim, a, b, "1"), name="p1")
        sim.spawn(_hold_then(sim, a, b, "2"), name="p2")
        sim.run()
        tracer.detach()
        assert lock_order_cycles(tracer) == []

    def test_counted_resources_do_not_create_edges(self):
        from repro.sim import Resource

        sim = Simulator()
        tracer = SimTracer()
        tracer.attach(sim)
        cores = Resource(sim, 4, name="cores")
        lock = Lock(sim, name="L")

        def worker():
            yield cores.acquire()
            yield lock.acquire()
            yield sim.timeout(1)
            lock.release()
            cores.release()

        sim.spawn(worker(), name="w")
        sim.run()
        tracer.detach()
        # A capacity-4 pool is not orderable: no edges either way.
        assert tracer.order_edges == {}

    def test_rwlock_modes_recorded(self):
        sim = Simulator()
        tracer = SimTracer()
        tracer.attach(sim)
        rw = RWLock(sim, name="rw")

        def reader():
            yield rw.acquire_read()
            yield sim.timeout(1)
            rw.release_read()

        sim.spawn(reader(), name="r")
        sim.run()
        tracer.detach()
        kinds = [(e.kind, e.mode) for e in tracer.lock_events]
        assert ("acquire", "r") in kinds and ("release", "r") in kinds


class TestRaces:
    def test_unsynchronized_write_write_race_is_reported(self):
        sim = Simulator()
        tracer = SimTracer()
        tracer.attach(sim)
        state = {}

        def writer(name, delay):
            yield sim.timeout(delay)
            tracer.on_state_access(("kv", "s1", ("F", 1, "x")), True)
            state["x"] = name

        sim.spawn(writer("p1", 1), name="writer-1")
        sim.spawn(writer("p2", 2), name="writer-2")
        sim.run()
        tracer.detach()

        races = race_findings(tracer)
        assert len(races) == 1
        race = races[0]
        assert race["key"] == ("kv", "s1", ("F", 1, "x"))
        assert {race["first_proc"], race["second_proc"]} == {"writer-1", "writer-2"}
        report = analyze_report(tracer)
        assert "races: 1" in report
        assert "no common lock held" in report

    def test_lock_protected_writes_are_clean(self):
        sim = Simulator()
        tracer = SimTracer()
        tracer.attach(sim)
        lock = Lock(sim, name="klock")

        def writer(delay):
            yield sim.timeout(delay)
            yield lock.acquire()
            tracer.on_state_access(("kv", "s1", "k"), True)
            yield sim.timeout(1)
            lock.release()

        sim.spawn(writer(1), name="w1")
        sim.spawn(writer(2), name="w2")
        sim.run()
        tracer.detach()
        assert race_findings(tracer) == []

    def test_read_only_sharing_is_clean(self):
        sim = Simulator()
        tracer = SimTracer()
        tracer.attach(sim)

        def reader(delay):
            yield sim.timeout(delay)
            tracer.on_state_access(("kv", "s1", "ro"), False)

        sim.spawn(reader(1), name="r1")
        sim.spawn(reader(2), name="r2")
        sim.run()
        tracer.detach()
        assert race_findings(tracer) == []

    def test_single_process_private_state_is_clean(self):
        sim = Simulator()
        tracer = SimTracer()
        tracer.attach(sim)

        def owner():
            for _ in range(3):
                yield sim.timeout(1)
                tracer.on_state_access(("kv", "s1", "private"), True)

        sim.spawn(owner(), name="o")
        sim.run()
        tracer.detach()
        assert race_findings(tracer) == []


class TestInstrumentedCluster:
    def test_traced_switchfs_run_produces_events_and_no_findings(self):
        from repro.analysis import instrument_server
        from repro.bench import make_cluster, scaled_config

        config = scaled_config(num_servers=2, cores_per_server=2, seed=7)
        cluster = make_cluster("SwitchFS", config)
        tracer = SimTracer(capture_stacks=False)
        tracer.attach(cluster.sim)
        for server in cluster.servers:
            instrument_server(tracer, server)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        for i in range(8):
            cluster.run_op(fs.create(f"/d/f{i}"))
        cluster.run_op(fs.rename("/d/f0", "/d/g0"))
        listing = cluster.run_op(fs.readdir("/d"))
        tracer.detach()

        assert len(listing["entries"]) == 8
        assert tracer.lock_events  # locks were traced
        assert tracer.state_records  # KV/changelog accesses were traced
        assert lock_order_cycles(tracer) == []
        assert race_findings(tracer) == []
        # The servers serve some lookups deliberately lock-free (atomic
        # single-key reads); those surface only under include_reads and
        # are classified, never promoted to write-write races.
        for r in race_findings(tracer, include_reads=True):
            assert r["kind"] == "read-write"
