"""Pool sanitizer: traps on protocol violations, silence on legit paths."""

import pytest

from repro.analysis import PoolSanitizer, pool_sanitizer_enabled
from repro.analysis.poolsan import PoolSanitizerError
from repro.net.packet import (
    Packet,
    StaleSetHeader,
    StaleSetOp,
    alloc_header,
    alloc_packet,
    pool_sanitizer,
    recycle_header,
    recycle_packet,
)


# The autouse fixture in tests/conftest.py already installs a sanitizer
# for every test; these tests use it directly via pool_sanitizer().


def test_fixture_installs_sanitizer():
    assert isinstance(pool_sanitizer(), PoolSanitizer)


class TestPacketTraps:
    def test_use_after_recycle_read_traps_with_actionable_message(self):
        p = alloc_packet("a", "b", {"n": 1})
        uid = p.uid
        recycle_packet(p)
        with pytest.raises(PoolSanitizerError) as ei:
            p.payload
        msg = str(ei.value)
        assert "use-after-recycle" in msg
        assert "Packet" in msg
        assert f"uid={uid}" in msg
        assert "recycled at" in msg
        assert "fix:" in msg

    def test_use_after_recycle_write_traps(self):
        p = alloc_packet("a", "b", None)
        recycle_packet(p)
        with pytest.raises(PoolSanitizerError, match="use-after-recycle"):
            p.dst = "elsewhere"

    def test_double_recycle_traps(self):
        p = alloc_packet("a", "b", None)
        recycle_packet(p)
        with pytest.raises(PoolSanitizerError) as ei:
            recycle_packet(p)
        msg = str(ei.value)
        assert "double-recycle" in msg
        assert "first recycled at" in msg

    def test_trap_message_names_the_recycling_test(self):
        # The captured recycle site should point at caller code, not at
        # the pool/sanitizer internals.
        p = alloc_packet("a", "b", None)
        recycle_packet(p)
        with pytest.raises(PoolSanitizerError) as ei:
            p.src
        assert "test_poolsan.py" in str(ei.value)


class TestHeaderTraps:
    def test_header_use_after_recycle_traps(self):
        h = StaleSetHeader(StaleSetOp.INSERT, fingerprint=7, seq=3)
        recycle_header(h)
        with pytest.raises(PoolSanitizerError) as ei:
            h.fingerprint
        msg = str(ei.value)
        assert "use-after-recycle" in msg
        assert "StaleSetHeader" in msg

    def test_header_double_recycle_traps(self):
        h = StaleSetHeader(StaleSetOp.QUERY, fingerprint=9)
        recycle_header(h)
        with pytest.raises(PoolSanitizerError, match="double-recycle"):
            recycle_header(h)

    def test_poisoned_header_comparison_traps(self):
        h = StaleSetHeader(StaleSetOp.QUERY, fingerprint=9)
        recycle_header(h)
        with pytest.raises(PoolSanitizerError):
            h == StaleSetHeader(StaleSetOp.QUERY, fingerprint=9)


class TestLegitPathsStaySilent:
    def test_alloc_recycle_alloc_round_trip(self):
        p = alloc_packet("a", "b", {"n": 1})
        recycle_packet(p)
        q = alloc_packet("c", "d", {"n": 2})
        # Reuse is fine once reallocated: fields are fresh, uid is new.
        assert q.src == "c" and q.payload == {"n": 2}
        recycle_packet(q)

    def test_live_packet_recycle_is_silently_skipped(self):
        p = alloc_packet("a", "b", None)
        keep = p  # second reference: the refcount guard must refuse
        recycle_packet(p)
        assert p.src == "a"  # still live, not poisoned
        assert keep.src == "a"
        assert pool_sanitizer().stats["skipped_live"] >= 1

    def test_header_pool_round_trip_through_with_ret(self):
        h = alloc_header(StaleSetOp.QUERY, fingerprint=11)
        h2 = h.with_ret(1)
        assert h2.ret == 1 and h2.fingerprint == 11
        recycle_header(h)
        recycle_header(h2)
        h3 = alloc_header(StaleSetOp.INSERT, fingerprint=12)
        assert h3.fingerprint == 12

    def test_clone_keeps_both_packets_usable(self):
        p = alloc_packet("a", "b", {"n": 1})
        q = p.clone(dst="c")
        assert p.dst == "b" and q.dst == "c"
        recycle_packet(q)
        assert p.payload == {"n": 1}


class TestAliasing:
    def test_pin_trap_when_reference_recycled_underneath(self):
        san = pool_sanitizer()
        p = alloc_packet("a", "b", None)
        token = san.pin(p)
        del p  # process keeps only the pin across its yield
        recycle_packet(token["obj"])  # another process recycles it
        with pytest.raises(PoolSanitizerError, match="pinned reference"):
            san.check_pin(token)

    def test_pin_trap_on_reallocation_aliasing(self):
        san = pool_sanitizer()
        p = alloc_packet("a", "b", None)
        token = san.pin(p)
        del p
        recycle_packet(token["obj"])
        q = alloc_packet("x", "y", None)  # pops the same instance
        assert q is token["obj"]
        with pytest.raises(PoolSanitizerError, match="cross-process aliasing"):
            san.check_pin(token)

    def test_pin_is_silent_when_nothing_happened(self):
        san = pool_sanitizer()
        p = alloc_packet("a", "b", None)
        token = san.pin(p)
        san.check_pin(token)  # no recycle: no trap


class TestEnablement:
    def test_context_manager_installs_and_uninstalls(self):
        outer = pool_sanitizer()
        with pool_sanitizer_enabled() as san:
            assert pool_sanitizer() is san
            assert san is not outer
        assert pool_sanitizer() is None

    def test_unsanitized_mode_still_pools(self):
        from repro.analysis import uninstall_pool_sanitizer

        uninstall_pool_sanitizer()
        try:
            p = alloc_packet("a", "b", None)
            recycle_packet(p)
            q = alloc_packet("c", "d", None)
            assert q is p  # plain freelist reuse, no poisoning
            assert q.src == "c"
        finally:
            from repro.analysis import install_pool_sanitizer

            install_pool_sanitizer()
