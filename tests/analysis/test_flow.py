"""Flow analyses: seeded bugs reprolint misses, baseline/SARIF plumbing,
dead-suppression audits, and the static/dynamic lock-order cross-check."""

import json
import textwrap
from pathlib import Path

import repro
from repro.analysis import SimTracer, instrument_server
from repro.analysis import flow
from repro.analysis.reprolint import lint_file
from repro.core import FSConfig, SwitchFSCluster


def _write(tmp_path, name, source):
    p = tmp_path / name
    p.write_text(textwrap.dedent(source), encoding="utf-8")
    return p


def _findings(tmp_path, *, rule=None):
    report = flow.analyze_paths([tmp_path])
    if rule is None:
        return report.findings
    return [f for f in report.findings if f.rule == rule]


# A minimal lock runtime the seeded-bug files share: a producer with the
# runtime's naming convention and an acquire wrapper, exactly the facts
# the real ServerRuntime exposes.
RUNTIME = """
from repro.sim import RWLock


class MiniRuntime:
    def _inode_lock(self, key):
        return RWLock(self.sim, name=f"inode:{key}")

    def _changelog_lock(self, dir_id):
        return RWLock(self.sim, name=f"changelog:{dir_id}")

    def _acquire(self, lock, mode):
        if mode == "r":
            yield lock.acquire_read()
        else:
            yield lock.acquire_write()
"""


class TestRL101PacketEscape:
    def test_seeded_leak_on_one_path_is_caught(self, tmp_path):
        p = _write(tmp_path, "leak.py", """
        from repro.net.packet import alloc_packet, recycle_packet

        def handler(net, dst):
            p = alloc_packet(dst=dst)
            if dst == 0:
                return None
            net.send(p)
            return None
        """)
        found = _findings(tmp_path, rule="RL101")
        assert len(found) == 1
        assert found[0].symbol == "p"
        assert found[0].sink == "exit"
        # The syntactic lint cannot see the leaking path.
        assert lint_file(p) == []

    def test_recycle_on_every_path_is_clean(self, tmp_path):
        _write(tmp_path, "clean.py", """
        from repro.net.packet import alloc_packet, recycle_packet

        def handler(net, dst):
            p = alloc_packet(dst=dst)
            if dst == 0:
                recycle_packet(p)
                return None
            net.send(p)
            return None
        """)
        assert _findings(tmp_path, rule="RL101") == []

    def test_recycle_in_finally_covers_the_return_path(self, tmp_path):
        _write(tmp_path, "fin.py", """
        from repro.net.packet import alloc_packet, recycle_packet

        def handler(net, dst):
            p = alloc_packet(dst=dst)
            try:
                return use(p.payload)
            finally:
                recycle_packet(p)
        """)
        assert _findings(tmp_path, rule="RL101") == []

    def test_store_into_container_is_an_escape(self, tmp_path):
        _write(tmp_path, "store.py", """
        from repro.net.packet import alloc_packet

        def park(queue, dst):
            p = alloc_packet(dst=dst)
            queue.append(p)
        """)
        found = _findings(tmp_path, rule="RL101")
        assert [f.sink for f in found] == ["store"]

    def test_returning_inside_a_list_transfers_custody(self, tmp_path):
        _write(tmp_path, "ret.py", """
        from repro.net.packet import alloc_packet

        def duplicate(packet):
            out = packet.clone()
            return [out, out.clone()]
        """)
        assert _findings(tmp_path, rule="RL101") == []


class TestRL102LockAcrossYield:
    def test_seeded_event_wait_under_lock_is_caught(self, tmp_path):
        p = _write(tmp_path, "held.py", RUNTIME + """
    def op(self, key):
        lock = self._inode_lock(key)
        yield from self._acquire(lock, "w")
        yield self.completion_event()
        lock.release_write()
        """)
        found = _findings(tmp_path, rule="RL102")
        assert len(found) == 1
        assert found[0].symbol == "inode"
        assert lint_file(p) == []

    def test_bounded_waits_under_lock_are_not_flagged(self, tmp_path):
        _write(tmp_path, "bounded.py", RUNTIME + """
    def op(self, key):
        lock = self._inode_lock(key)
        yield from self._acquire(lock, "w")
        yield self.sim.timeout(5)
        yield self.cores.acquire()
        lock.release_write()
        """)
        assert _findings(tmp_path, rule="RL102") == []

    def test_release_before_event_wait_is_clean(self, tmp_path):
        _write(tmp_path, "released.py", RUNTIME + """
    def op(self, key):
        lock = self._inode_lock(key)
        yield from self._acquire(lock, "w")
        lock.release_write()
        yield self.completion_event()
        """)
        assert _findings(tmp_path, rule="RL102") == []


class TestRL103LockOrderGraph:
    def test_opposite_acquisition_orders_make_a_cycle(self, tmp_path):
        _write(tmp_path, "order.py", RUNTIME + """
    def forward(self, key, dir_id):
        ilock = self._inode_lock(key)
        cl = self._changelog_lock(dir_id)
        yield from self._acquire(ilock, "w")
        yield from self._acquire(cl, "r")
        cl.release_read()
        ilock.release_write()

    def backward(self, key, dir_id):
        ilock = self._inode_lock(key)
        cl = self._changelog_lock(dir_id)
        yield from self._acquire(cl, "r")
        yield from self._acquire(ilock, "w")
        ilock.release_write()
        cl.release_read()
        """)
        report = flow.analyze_paths([tmp_path])
        edges = set(report.lock_graph)
        assert ("inode", "changelog") in edges
        assert ("changelog", "inode") in edges
        assert ["changelog", "inode"] in report.cycles
        assert any(f.rule == "RL103" for f in report.findings)

    def test_single_order_has_no_cycle(self, tmp_path):
        _write(tmp_path, "oneway.py", RUNTIME + """
    def forward(self, key, dir_id):
        ilock = self._inode_lock(key)
        cl = self._changelog_lock(dir_id)
        yield from self._acquire(ilock, "w")
        yield from self._acquire(cl, "r")
        cl.release_read()
        ilock.release_write()
        """)
        report = flow.analyze_paths([tmp_path])
        assert set(report.lock_graph) == {("inode", "changelog")}
        assert report.cycles == []


class TestRL104StaleView:
    def test_seeded_stale_owner_is_caught(self, tmp_path):
        p = _write(tmp_path, "stale.py", """
        def route(self, key):
            owner = self.cmap.view.owner_of(key)
            yield self.sim.timeout(1)
            return self.call(owner)
        """)
        found = _findings(tmp_path, rule="RL104")
        assert len(found) == 1
        assert found[0].symbol == "owner"
        assert lint_file(p) == []

    def test_use_before_any_yield_is_fresh(self, tmp_path):
        _write(tmp_path, "fresh.py", """
        def route(self, key):
            owner = self.cmap.view.owner_of(key)
            value = yield from self.call(owner, key)
            return value
        """)
        # owner is consumed while evaluating the yield-from operand —
        # before the suspension — so it is not stale there.
        assert _findings(tmp_path, rule="RL104") == []

    def test_rebinding_after_resume_refreshes(self, tmp_path):
        _write(tmp_path, "refresh.py", """
        def route(self, key):
            owner = self.cmap.view.owner_of(key)
            yield self.sim.timeout(1)
            owner = self.cmap.view.owner_of(key)
            return self.call(owner)
        """)
        assert _findings(tmp_path, rule="RL104") == []


class TestSuppressionAndAudit:
    def test_allow_comment_suppresses_a_flow_finding(self, tmp_path):
        _write(tmp_path, "ok.py", """
        def route(self, key):
            owner = self.cmap.view.owner_of(key)
            yield self.sim.timeout(1)
            return self.call(owner)  # reprolint: allow[RL104] epoch-checked downstream
        """)
        report = flow.analyze_paths([tmp_path])
        assert [f.rule for f in report.findings] == []

    def test_dead_flow_suppression_is_reported(self, tmp_path):
        _write(tmp_path, "dead.py", """
        def route(self, key):
            return key + 1  # reprolint: allow[RL104] nothing fires here
        """)
        report = flow.analyze_paths([tmp_path])
        assert [f.rule for f in report.findings] == ["RL007"]
        assert "RL104" in report.findings[0].message

    def test_prose_mention_in_docstring_is_not_audited(self, tmp_path):
        _write(tmp_path, "prose.py", '''
        def doc(self):
            """Suppress with '# reprolint: allow[RL104] why' on the line."""
            return 1
        ''')
        report = flow.analyze_paths([tmp_path])
        assert report.findings == []


class TestBaselineRoundTrip:
    def test_round_trip_masks_known_findings_only(self, tmp_path):
        _write(tmp_path, "stale.py", """
        def route(self, key):
            owner = self.cmap.view.owner_of(key)
            yield self.sim.timeout(1)
            return self.call(owner)
        """)
        report = flow.analyze_paths([tmp_path])
        assert len(report.findings) == 1
        baseline_file = tmp_path / "baseline.json"
        flow.write_baseline(baseline_file, report)
        baseline = flow.load_baseline(baseline_file)
        assert flow.new_findings(report, baseline) == []

        # A second, unbaselined finding surfaces while the old one stays
        # masked — fingerprints are line-free, so unrelated churn above
        # the finding does not invalidate the baseline.
        _write(tmp_path, "stale.py", """
        def moved():
            return 0

        def route(self, key):
            owner = self.cmap.view.owner_of(key)
            yield self.sim.timeout(1)
            return self.call(owner)

        def route2(self, key):
            owner = self.cmap.view.owner_of(key)
            yield self.sim.timeout(1)
            return self.call(owner)
        """)
        report2 = flow.analyze_paths([tmp_path])
        fresh = flow.new_findings(report2, baseline)
        assert [f.function for f in fresh] == ["route2"]

    def test_baseline_file_shape(self, tmp_path):
        _write(tmp_path, "dead.py", """
        def route(self, key):
            return key  # reprolint: allow[RL102] dead on purpose
        """)
        report = flow.analyze_paths([tmp_path])
        baseline_file = tmp_path / "baseline.json"
        flow.write_baseline(baseline_file, report)
        data = json.loads(baseline_file.read_text())
        assert data["version"] == 1
        assert all(isinstance(v, int) for v in data["fingerprints"].values())


class TestSarif:
    def test_sarif_document_shape(self, tmp_path):
        _write(tmp_path, "stale.py", """
        def route(self, key):
            owner = self.cmap.view.owner_of(key)
            yield self.sim.timeout(1)
            return self.call(owner)
        """)
        report = flow.analyze_paths([tmp_path])
        doc = flow.to_sarif(report)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-flow"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert rule_ids == set(flow.FLOW_RULES)
        (result,) = run["results"]
        assert result["ruleId"] == "RL104"
        assert result["locations"][0]["physicalLocation"]["region"]["startLine"] > 0
        assert result["partialFingerprints"]["reproFlow/v1"].startswith("RL104:")
        json.dumps(doc)  # must be serialisable as-is


class TestStaticDynamicCrossCheck:
    def test_static_graph_covers_every_dynamic_edge(self):
        """Soundness direction of DESIGN.md §17: any (held, acquired)
        class edge SimTracer witnesses at run time must already be in
        the static graph — a miss means call resolution lost a path."""
        src_root = Path(repro.__file__).parent
        report = flow.analyze_paths([src_root])

        cluster = SwitchFSCluster(FSConfig(num_servers=2, cores_per_server=2, seed=29))
        tracer = SimTracer(capture_stacks=False)
        tracer.attach(cluster.sim)
        for server in cluster.servers:
            instrument_server(tracer, server)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/a"))
        cluster.run_op(fs.mkdir("/b"))
        for i in range(20):
            cluster.run_op(fs.create(f"/a/f{i}"))
            cluster.run_op(fs.mkdir(f"/a/d{i}"))
        for i in range(10):
            cluster.run_op(fs.rename(f"/a/f{i}", f"/b/r{i}"))
            cluster.run_op(fs.rmdir(f"/a/d{i}"))
        cluster.settle()
        tracer.detach()
        assert tracer.order_edges, "workload produced no nested acquisitions"

        check = flow.cross_check_lock_orders(report, tracer)
        assert check["dynamic_only"] == [], (
            "dynamic lock-order edges missing from the static graph: "
            f"{check['dynamic_only']}"
        )
        assert check["sound"] is True
        # The reverse direction is informational: statically possible
        # edges this one workload never scheduled.
        assert set(check["static_edges"]) >= set(check["dynamic_edges"])


class TestRepoIsFlowClean:
    def test_src_has_no_unbaselined_findings(self):
        repo_root = Path(repro.__file__).resolve().parents[2]
        baseline_file = repo_root / "flow-baseline.json"
        report = flow.analyze_paths([Path(repro.__file__).parent])
        baseline = flow.load_baseline(baseline_file)
        fresh = flow.new_findings(report, baseline)
        assert fresh == [], [flow.format_flow_finding(f) for f in fresh]
