"""The baseline DFSs must provide the same POSIX metadata semantics —
they differ from SwitchFS only in partition strategy and protocol."""

import pytest

from repro.baselines import (
    CephLikeCluster,
    CFSKVCluster,
    GroupedPartition,
    IndexFSCluster,
    InfiniFSCluster,
    PerFilePartition,
    SubtreePartition,
)
from repro.core import FSConfig, FSError

ALL_SYSTEMS = [InfiniFSCluster, CFSKVCluster, IndexFSCluster, CephLikeCluster]


def make(cluster_cls):
    return cluster_cls(FSConfig(num_servers=4, cores_per_server=2, seed=2))


@pytest.mark.parametrize("cluster_cls", ALL_SYSTEMS)
class TestBaselineSemantics:
    def test_create_stat_delete(self, cluster_cls):
        cluster = make(cluster_cls)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        cluster.run_op(fs.create("/d/f"))
        assert cluster.run_op(fs.stat("/d/f"))["size"] == 0
        cluster.run_op(fs.delete("/d/f"))
        with pytest.raises(FSError):
            cluster.run_op(fs.stat("/d/f"))

    def test_readdir_and_counts(self, cluster_cls):
        cluster = make(cluster_cls)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        for i in range(5):
            cluster.run_op(fs.create(f"/d/f{i}"))
        cluster.run_op(fs.delete("/d/f2"))
        listing = cluster.run_op(fs.readdir("/d"))
        assert sorted(listing["entries"]) == ["f0", "f1", "f3", "f4"]
        assert cluster.run_op(fs.statdir("/d"))["entry_count"] == 4

    def test_eexist_enoent(self, cluster_cls):
        cluster = make(cluster_cls)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        cluster.run_op(fs.create("/d/f"))
        with pytest.raises(FSError) as err:
            cluster.run_op(fs.create("/d/f"))
        assert err.value.code == "EEXIST"
        with pytest.raises(FSError) as err:
            cluster.run_op(fs.delete("/d/ghost"))
        assert err.value.code == "ENOENT"

    def test_rmdir_semantics(self, cluster_cls):
        cluster = make(cluster_cls)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        cluster.run_op(fs.create("/d/f"))
        with pytest.raises(FSError) as err:
            cluster.run_op(fs.rmdir("/d"))
        assert err.value.code == "ENOTEMPTY"
        cluster.run_op(fs.delete("/d/f"))
        cluster.run_op(fs.rmdir("/d"))
        with pytest.raises(FSError):
            cluster.run_op(fs.statdir("/d"))

    def test_nested_directories(self, cluster_cls):
        cluster = make(cluster_cls)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/a"))
        cluster.run_op(fs.mkdir("/a/b"))
        cluster.run_op(fs.create("/a/b/f"))
        assert cluster.run_op(fs.stat("/a/b/f"))["mtime"] > 0

    def test_file_rename(self, cluster_cls):
        cluster = make(cluster_cls)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/s"))
        cluster.run_op(fs.mkdir("/t"))
        cluster.run_op(fs.create("/s/f"))
        cluster.run_op(fs.rename("/s/f", "/t/g"))
        assert cluster.run_op(fs.stat("/t/g"))["size"] == 0
        with pytest.raises(FSError):
            cluster.run_op(fs.stat("/s/f"))
        assert cluster.run_op(fs.statdir("/s"))["entry_count"] == 0
        assert cluster.run_op(fs.statdir("/t"))["entry_count"] == 1


class TestPartitionPlacement:
    def test_grouped_colocates_children(self):
        """InfiniFS grouping: a directory's files all map to one server."""
        part = GroupedPartition(8)
        owners = {part.file_owner(12345, f"f{i}", "/d") for i in range(50)}
        assert len(owners) == 1

    def test_per_file_spreads_children(self):
        part = PerFilePartition(8)
        owners = {part.file_owner(12345, f"f{i}", "/d") for i in range(200)}
        assert len(owners) == 8

    def test_subtree_keeps_whole_subtree_together(self):
        part = SubtreePartition(8)
        a = {part.file_owner(1, f"f{i}", "/top1/deep/er") for i in range(20)}
        assert len(a) == 1
        assert part.dir_owner(5, "x", "/top1/x") == part.file_owner(9, "y", "/top1/z")

    def test_grouped_create_is_single_server(self):
        """The defining InfiniFS property: file create touches one server."""
        cluster = make(InfiniFSCluster)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        before = {s.addr: s.counters.get("cross_server_updates") for s in cluster.servers}
        for i in range(10):
            cluster.run_op(fs.create(f"/d/f{i}"))
        after = {s.addr: s.counters.get("cross_server_updates") for s in cluster.servers}
        assert before == after  # no cross-server parent updates

    def test_per_file_create_is_cross_server(self):
        cluster = make(CFSKVCluster)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        for i in range(10):
            cluster.run_op(fs.create(f"/d/f{i}"))
        crossings = sum(s.counters.get("cross_server_updates") for s in cluster.servers)
        assert crossings > 0


class TestStackModels:
    def test_ceph_is_much_slower(self):
        def create_latency(cluster_cls):
            cluster = make(cluster_cls)
            fs = cluster.client(0)
            cluster.run_op(fs.mkdir("/d"))
            t0 = cluster.sim.now
            cluster.run_op(fs.create("/d/f"))
            return cluster.sim.now - t0

        assert create_latency(CephLikeCluster) > 5 * create_latency(InfiniFSCluster)

    def test_indexfs_slower_than_infinifs(self):
        def create_latency(cluster_cls):
            cluster = make(cluster_cls)
            fs = cluster.client(0)
            cluster.run_op(fs.mkdir("/d"))
            t0 = cluster.sim.now
            cluster.run_op(fs.create("/d/f"))
            return cluster.sim.now - t0

        assert create_latency(IndexFSCluster) > create_latency(InfiniFSCluster)
