"""Unit tests for the network fabric and fault injection."""

import pytest

from repro.net import (
    FaultModel,
    Network,
    Packet,
    PassthroughSwitch,
    single_rack_path,
    leaf_spine_path,
)
from repro.sim import Simulator, make_rng


def make_net(sim, **kwargs):
    return Network(sim, single_rack_path([PassthroughSwitch()]), **kwargs)


class TestFaultModel:
    def test_reliable_never_drops(self):
        fm = FaultModel.reliable()
        for _ in range(100):
            d = fm.decide()
            assert d.copies == 1 and d.extra_delays == (0.0,)

    def test_loss_rate_roughly_respected(self):
        fm = FaultModel(make_rng(1, "f"), loss_prob=0.3)
        drops = sum(1 for _ in range(10_000) if fm.decide().dropped)
        assert 2700 < drops < 3300

    def test_duplication(self):
        fm = FaultModel(make_rng(1, "f"), dup_prob=1.0)
        d = fm.decide()
        assert d.copies == 2 and len(d.extra_delays) == 2

    def test_reorder_jitter_bounds(self):
        fm = FaultModel(make_rng(1, "f"), reorder_prob=1.0, reorder_jitter_us=5.0)
        for _ in range(100):
            d = fm.decide()
            assert all(0.0 <= x <= 5.0 for x in d.extra_delays)

    def test_invalid_probs_rejected(self):
        with pytest.raises(ValueError):
            FaultModel(make_rng(0, "f"), loss_prob=1.5)
        with pytest.raises(ValueError):
            FaultModel(make_rng(0, "f"), reorder_jitter_us=-1)


class TestNetwork:
    def test_delivery_latency_two_links(self):
        sim = Simulator()
        net = make_net(sim, link_latency_us=0.75)
        inbox = net.attach("b")
        net.attach("a")
        got = []

        def receiver(sim, inbox):
            pkt = yield inbox.get()
            got.append((pkt.payload, sim.now))

        sim.spawn(receiver(sim, inbox))
        net.send(Packet(src="a", dst="b", payload="hi"))
        sim.run()
        # host->switch + switch->host = 2 links = 1.5us.
        assert got == [("hi", 1.5)]

    def test_double_attach_rejected(self):
        sim = Simulator()
        net = make_net(sim)
        net.attach("a")
        with pytest.raises(ValueError):
            net.attach("a")

    def test_unknown_destination_dropped(self):
        sim = Simulator()
        net = make_net(sim)
        net.attach("a")
        net.send(Packet(src="a", dst="ghost", payload="x"))
        sim.run()
        assert net.packets_dropped == 1
        assert net.packets_delivered == 0

    def test_lossy_network_counts_drops(self):
        sim = Simulator()
        net = Network(
            sim,
            single_rack_path([PassthroughSwitch()]),
            faults=FaultModel(make_rng(3, "loss"), loss_prob=1.0),
        )
        net.attach("a")
        net.attach("b")
        net.send(Packet(src="a", dst="b", payload="x"))
        sim.run()
        assert net.packets_dropped == 1

    def test_duplicate_delivers_two_copies(self):
        sim = Simulator()
        net = Network(
            sim,
            single_rack_path([PassthroughSwitch()]),
            faults=FaultModel(make_rng(3, "dup"), dup_prob=1.0),
        )
        net.attach("a")
        inbox = net.attach("b")
        got = []

        def receiver(sim, inbox):
            while True:
                pkt = yield inbox.get()
                got.append(pkt.uid)

        sim.spawn(receiver(sim, inbox))
        net.send(Packet(src="a", dst="b", payload="x"))
        sim.run()
        assert len(got) == 2
        assert got[0] != got[1]  # clones carry distinct uids

    def test_leaf_spine_has_more_hops(self):
        sim = Simulator()
        rack_of = {"a": 0, "b": 1}
        leaves = {0: PassthroughSwitch(), 1: PassthroughSwitch()}
        spine = PassthroughSwitch()
        net = Network(sim, leaf_spine_path(rack_of, leaves, spine), link_latency_us=1.0)
        net.attach("a")
        inbox = net.attach("b")
        got = []

        def receiver(sim, inbox):
            pkt = yield inbox.get()
            got.append(sim.now)

        sim.spawn(receiver(sim, inbox))
        net.send(Packet(src="a", dst="b", payload="x"))
        sim.run()
        # 4 links: a->leaf0->spine->leaf1->b.
        assert got == [4.0]

    def test_consuming_switch_ends_delivery(self):
        class BlackHole:
            latency_us = 0.0

            def process(self, packet):
                return []

        sim = Simulator()
        net = Network(sim, single_rack_path([BlackHole()]))
        net.attach("a")
        net.attach("b")
        net.send(Packet(src="a", dst="b", payload="x"))
        sim.run()
        assert net.packets_delivered == 0
