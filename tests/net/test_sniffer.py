"""Packet sniffer tests: capture, filters, and protocol-cost probes."""

import pytest

from repro.core import FSConfig, SwitchFSCluster
from repro.net.sniffer import Sniffer


def make():
    cluster = SwitchFSCluster(
        FSConfig(num_servers=3, cores_per_server=2, seed=44, proactive_enabled=False)
    )
    fs = cluster.client(0)
    return cluster, fs


class TestCapture:
    def test_records_requests_and_responses(self):
        cluster, fs = make()
        sniffer = Sniffer.attach(cluster.net)
        cluster.run_op(fs.mkdir("/d"))
        assert sniffer.count(kind="request", method="mkdir") == 1
        assert sniffer.count(kind="response") >= 1
        sniffer.detach()

    def test_detach_stops_capture(self):
        cluster, fs = make()
        sniffer = Sniffer.attach(cluster.net)
        cluster.run_op(fs.mkdir("/d"))
        n = len(sniffer.packets)
        sniffer.detach()
        cluster.run_op(fs.create("/d/f"))
        assert len(sniffer.packets) == n

    def test_staleset_headers_visible(self):
        cluster, fs = make()
        sniffer = Sniffer.attach(cluster.net)
        cluster.run_op(fs.mkdir("/d"))
        cluster.run_op(fs.create("/d/f"))
        # The create's response left the server carrying an INSERT.
        inserts = sniffer.filter(staleset_op="INSERT")
        assert len(inserts) >= 1
        cluster.run_op(fs.statdir("/d"))
        assert sniffer.count(staleset_op="QUERY") >= 1
        cluster.run(until=cluster.sim.now + 2_000)
        assert sniffer.count(staleset_op="REMOVE") >= 1
        sniffer.detach()

    def test_filters_compose(self):
        cluster, fs = make()
        sniffer = Sniffer.attach(cluster.net)
        cluster.run_op(fs.mkdir("/d"))
        from_client = sniffer.filter(src="client-0", kind="request")
        assert all(p.src == "client-0" for p in from_client)
        sniffer.detach()

    def test_clear(self):
        cluster, fs = make()
        sniffer = Sniffer.attach(cluster.net)
        cluster.run_op(fs.mkdir("/d"))
        sniffer.clear()
        assert sniffer.packets == []
        sniffer.detach()


class TestProtocolCost:
    def test_create_is_a_handful_of_messages(self):
        """One-RTT protocol: a create costs the request, the multicast
        response pair, and nothing else on the critical path."""
        cluster, fs = make()
        cluster.run_op(fs.mkdir("/d"))
        cluster.run_op(fs.create("/d/warm"))  # warm the resolution cache
        sniffer = Sniffer.attach(cluster.net)
        for i in range(10):
            cluster.run_op(fs.create(f"/d/f{i}"))
        per_op = sniffer.messages_per_op("create")
        # request + response (multicast happens inside the switch, not as
        # separate sends) = 2 messages per create.
        assert per_op <= 3.0
        sniffer.detach()

    def test_messages_per_op_needs_samples(self):
        cluster, fs = make()
        sniffer = Sniffer.attach(cluster.net)
        with pytest.raises(ValueError):
            sniffer.messages_per_op("create")
        sniffer.detach()
