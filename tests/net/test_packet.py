"""Unit and property tests for packet and stale-set header codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import (
    FINGERPRINT_BITS,
    Packet,
    REGULAR_PORT,
    STALESET_PORT,
    StaleSetHeader,
    StaleSetOp,
)


class TestStaleSetHeader:
    def test_pack_unpack_roundtrip(self):
        h = StaleSetHeader(op=StaleSetOp.INSERT, fingerprint=0x1ABCD_1234_5678, seq=42, ret=1)
        assert StaleSetHeader.unpack(h.pack()) == h

    def test_packed_size(self):
        h = StaleSetHeader(op=StaleSetOp.QUERY, fingerprint=1)
        assert len(h.pack()) == 14  # 1 + 1 + 4 + 8 bytes

    def test_fingerprint_range_enforced(self):
        with pytest.raises(ValueError):
            StaleSetHeader(op=StaleSetOp.QUERY, fingerprint=1 << FINGERPRINT_BITS)
        with pytest.raises(ValueError):
            StaleSetHeader(op=StaleSetOp.QUERY, fingerprint=-1)

    def test_seq_range_enforced(self):
        with pytest.raises(ValueError):
            StaleSetHeader(op=StaleSetOp.REMOVE, fingerprint=1, seq=1 << 32)

    def test_ret_binary(self):
        with pytest.raises(ValueError):
            StaleSetHeader(op=StaleSetOp.QUERY, fingerprint=1, ret=2)

    def test_with_ret_copies(self):
        h = StaleSetHeader(op=StaleSetOp.QUERY, fingerprint=7)
        h2 = h.with_ret(1)
        assert h.ret == 0 and h2.ret == 1
        assert h2.fingerprint == 7

    @given(
        op=st.sampled_from(list(StaleSetOp)),
        fingerprint=st.integers(min_value=0, max_value=(1 << FINGERPRINT_BITS) - 1),
        seq=st.integers(min_value=0, max_value=(1 << 32) - 1),
        ret=st.integers(min_value=0, max_value=1),
    )
    def test_roundtrip_property(self, op, fingerprint, seq, ret):
        h = StaleSetHeader(op=op, fingerprint=fingerprint, seq=seq, ret=ret)
        assert StaleSetHeader.unpack(h.pack()) == h


class TestPacket:
    def test_staleset_port_requires_header(self):
        with pytest.raises(ValueError):
            Packet(src="a", dst="b", payload=None, port=STALESET_PORT)

    def test_regular_port_forbids_header(self):
        h = StaleSetHeader(op=StaleSetOp.QUERY, fingerprint=1)
        with pytest.raises(ValueError):
            Packet(src="a", dst="b", payload=None, port=REGULAR_PORT, header=h)

    def test_clone_gets_fresh_uid(self):
        p = Packet(src="a", dst="b", payload="x")
        q = p.clone()
        assert q.uid != p.uid
        assert (q.src, q.dst, q.payload) == ("a", "b", "x")

    def test_clone_overrides(self):
        p = Packet(src="a", dst="b", payload="x")
        q = p.clone(dst="c")
        assert q.dst == "c" and p.dst == "b"
