"""Unit and property tests for packet and stale-set header codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import (
    FINGERPRINT_BITS,
    HEADER_STRUCT,
    Packet,
    REGULAR_PORT,
    STALESET_PORT,
    StaleSetHeader,
    StaleSetOp,
)
from repro.net.packet import alloc_packet, recycle_packet


class TestStaleSetHeader:
    def test_pack_unpack_roundtrip(self):
        h = StaleSetHeader(op=StaleSetOp.INSERT, fingerprint=0x1ABCD_1234_5678, seq=42, ret=1)
        assert StaleSetHeader.unpack(h.pack()) == h

    def test_packed_size(self):
        h = StaleSetHeader(op=StaleSetOp.QUERY, fingerprint=1)
        assert len(h.pack()) == 14  # 1 + 1 + 4 + 8 bytes

    def test_fingerprint_range_enforced(self):
        with pytest.raises(ValueError):
            StaleSetHeader(op=StaleSetOp.QUERY, fingerprint=1 << FINGERPRINT_BITS)
        with pytest.raises(ValueError):
            StaleSetHeader(op=StaleSetOp.QUERY, fingerprint=-1)

    def test_seq_range_enforced(self):
        with pytest.raises(ValueError):
            StaleSetHeader(op=StaleSetOp.REMOVE, fingerprint=1, seq=1 << 32)

    def test_ret_binary(self):
        with pytest.raises(ValueError):
            StaleSetHeader(op=StaleSetOp.QUERY, fingerprint=1, ret=2)

    def test_with_ret_copies(self):
        h = StaleSetHeader(op=StaleSetOp.QUERY, fingerprint=7)
        h2 = h.with_ret(1)
        assert h.ret == 0 and h2.ret == 1
        assert h2.fingerprint == 7

    @given(
        op=st.sampled_from(list(StaleSetOp)),
        fingerprint=st.integers(min_value=0, max_value=(1 << FINGERPRINT_BITS) - 1),
        seq=st.integers(min_value=0, max_value=(1 << 32) - 1),
        ret=st.integers(min_value=0, max_value=1),
    )
    def test_roundtrip_property(self, op, fingerprint, seq, ret):
        h = StaleSetHeader(op=op, fingerprint=fingerprint, seq=seq, ret=ret)
        assert StaleSetHeader.unpack(h.pack()) == h


class TestStaleSetHeaderBoundaries:
    """Codec behaviour at the 49-bit fingerprint edge and the EMPTY tag."""

    @pytest.mark.parametrize(
        "fp",
        [0, 1, (1 << 32) - 1, 1 << 32, (1 << 48) - 1, 1 << 48, (1 << 49) - 1],
    )
    def test_roundtrip_across_49_bit_boundary(self, fp):
        h = StaleSetHeader(op=StaleSetOp.INSERT, fingerprint=fp, seq=7, ret=1)
        assert StaleSetHeader.unpack(h.pack()) == h

    def test_unpack_rejects_fingerprint_past_49_bits(self):
        # The 8-byte wire field is wider than the 49-bit domain; unpack
        # must enforce the same range as the constructor.
        raw = HEADER_STRUCT.pack(int(StaleSetOp.QUERY), 0, 0, 1 << FINGERPRINT_BITS)
        with pytest.raises(ValueError):
            StaleSetHeader.unpack(raw)

    def test_unpack_rejects_out_of_domain_ret(self):
        raw = HEADER_STRUCT.pack(int(StaleSetOp.QUERY), 2, 0, 1)
        with pytest.raises(ValueError):
            StaleSetHeader.unpack(raw)

    def test_reserved_empty_tag_roundtrips_verbatim(self):
        # A fingerprint whose low 32 tag bits are zero collides with the
        # switch's reserved "empty register" value.  The codec carries it
        # verbatim — the remap to tag 1 happens in schema.fingerprint_of,
        # not on the wire.
        fp = 5 << 32
        h = StaleSetHeader(op=StaleSetOp.QUERY, fingerprint=fp)
        assert StaleSetHeader.unpack(h.pack()).fingerprint == fp

    def test_fingerprint_of_never_emits_empty_tag(self):
        from repro.core.schema import fingerprint_of

        for i in range(200):
            assert fingerprint_of(i, f"d{i}") & ((1 << 32) - 1) != 0

    @given(
        fingerprint=st.one_of(
            st.sampled_from([0, 1 << 32, 1 << 48, (1 << 49) - 1]),
            st.integers(min_value=0, max_value=(1 << FINGERPRINT_BITS) - 1),
        ),
        seq=st.sampled_from([0, 1, (1 << 32) - 1]),
    )
    def test_with_ret_preserves_fields(self, fingerprint, seq):
        h = StaleSetHeader(op=StaleSetOp.QUERY, fingerprint=fingerprint, seq=seq)
        h2 = h.with_ret(1)
        assert (h2.op, h2.fingerprint, h2.seq, h2.ret) == (h.op, h.fingerprint, h.seq, 1)
        assert StaleSetHeader.unpack(h2.pack()) == h2


class TestPacketPool:
    """Regression tests for the bounded packet freelist (DESIGN.md §10)."""

    def test_recycled_packet_never_aliases_previous_header(self):
        h = StaleSetHeader(op=StaleSetOp.INSERT, fingerprint=3)
        p = alloc_packet("a", "b", {"v": 1}, STALESET_PORT, h, 64)
        old_uid = p.uid
        recycle_packet(p)
        del p
        q = alloc_packet("c", "d", "payload")
        # Reused or fresh, the new packet carries no stale header/payload
        # and a fresh uid.
        assert q.header is None
        assert q.payload == "payload"
        assert q.uid != old_uid

    def test_live_packet_is_not_recycled(self):
        p = alloc_packet("a", "b", "x")
        keep = p  # second reference: the refcount guard must refuse to pool
        recycle_packet(p)
        q = alloc_packet("c", "d", "y")
        assert q is not p
        assert keep.payload == "x"  # untouched by the failed recycle

    def test_clone_of_pooled_packet_is_independent(self):
        h = StaleSetHeader(op=StaleSetOp.QUERY, fingerprint=9)
        p = alloc_packet("a", "b", "x", STALESET_PORT, h)
        q = p.clone(dst="c")
        assert q.uid != p.uid and q.dst == "c" and p.dst == "b"
        assert q.header is p.header  # headers are immutable, sharing is safe
        recycle_packet(q)
        assert p.header is h  # recycling the clone never touches the original


class TestPacket:
    def test_staleset_port_requires_header(self):
        with pytest.raises(ValueError):
            Packet(src="a", dst="b", payload=None, port=STALESET_PORT)

    def test_regular_port_forbids_header(self):
        h = StaleSetHeader(op=StaleSetOp.QUERY, fingerprint=1)
        with pytest.raises(ValueError):
            Packet(src="a", dst="b", payload=None, port=REGULAR_PORT, header=h)

    def test_clone_gets_fresh_uid(self):
        p = Packet(src="a", dst="b", payload="x")
        q = p.clone()
        assert q.uid != p.uid
        assert (q.src, q.dst, q.payload) == ("a", "b", "x")

    def test_clone_overrides(self):
        p = Packet(src="a", dst="b", payload="x")
        q = p.clone(dst="c")
        assert q.dst == "c" and p.dst == "b"
