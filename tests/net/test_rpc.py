"""Unit tests for the RPC layer: calls, retries, at-most-once, notify."""

import pytest

from repro.net import (
    FaultModel,
    Network,
    PassthroughSwitch,
    Reply,
    RpcError,
    RpcNode,
    RpcTimeout,
    single_rack_path,
)
from repro.sim import Simulator, make_rng


def setup_pair(loss_prob=0.0, seed=1):
    sim = Simulator()
    faults = (
        FaultModel(make_rng(seed, "loss"), loss_prob=loss_prob)
        if loss_prob
        else FaultModel.reliable()
    )
    net = Network(sim, single_rack_path([PassthroughSwitch()]), faults=faults)
    client = RpcNode(sim, net, "client")
    server = RpcNode(sim, net, "server")
    return sim, net, client, server


def run_call(sim, client, *args, **kwargs):
    proc = sim.spawn(client.call(*args, **kwargs), name="call")
    return sim.run_process(proc)


class TestBasicRpc:
    def test_echo(self):
        sim, net, client, server = setup_pair()

        def echo(request, packet):
            yield sim.timeout(1.0)
            return request.args

        server.register("echo", echo)
        value, pkt = run_call(sim, client, "server", "echo", {"x": 1})
        assert value == {"x": 1}
        assert pkt.src == "server"

    def test_handler_error_propagates(self):
        sim, net, client, server = setup_pair()

        def boom(request, packet):
            yield sim.timeout(0.1)
            raise RpcError("denied")

        server.register("boom", boom)
        proc = sim.spawn(client.call("server", "boom", None), name="call")
        with pytest.raises(RpcError, match="denied"):
            sim.run_process(proc)

    def test_unknown_method_is_error(self):
        sim, net, client, server = setup_pair()
        proc = sim.spawn(client.call("server", "nope", None), name="call")
        with pytest.raises(RpcError, match="no handler"):
            sim.run_process(proc)

    def test_reply_object_controls_value(self):
        sim, net, client, server = setup_pair()

        def handler(request, packet):
            yield sim.timeout(0.1)
            return Reply(value="custom")

        server.register("h", handler)
        value, _ = run_call(sim, client, "server", "h", None)
        assert value == "custom"


class TestRetransmission:
    def test_retry_succeeds_under_loss(self):
        # 40% loss: with 10 attempts the call should eventually land.
        sim, net, client, server = setup_pair(loss_prob=0.4, seed=7)
        calls = []

        def handler(request, packet):
            calls.append(request.rpc_id)
            yield sim.timeout(0.5)
            return "ok"

        server.register("h", handler)
        value, _ = run_call(
            sim, client, "server", "h", None, timeout_us=20.0, max_attempts=10
        )
        assert value == "ok"
        assert client.retransmits >= 1

    def test_at_most_once_execution(self):
        """Duplicated requests must not re-execute the handler."""
        sim, net, client, server = setup_pair()
        executions = []

        def handler(request, packet):
            executions.append(request.attempt)
            yield sim.timeout(50.0)  # slower than the client's timeout
            return "done"

        server.register("h", handler)
        value, _ = run_call(
            sim, client, "server", "h", None, timeout_us=10.0, max_attempts=8
        )
        assert value == "done"
        assert len(executions) == 1  # retries hit the reply cache / in-progress marker

    def test_duplicate_after_completion_resends_cached_reply(self):
        sim, net, client, server = setup_pair()
        executions = []

        def handler(request, packet):
            executions.append(1)
            yield sim.timeout(1.0)
            return "v"

        server.register("h", handler)
        run_call(sim, client, "server", "h", None)
        # Manually re-deliver a duplicate of the same request id.
        from repro.net import Packet, RpcRequest

        dup = RpcRequest(rpc_id=1, method="h", args=None, src="client", attempt=1)
        # Find the actual rpc_id used: executions==1 so grab from cache.
        key = next(iter(server._reply_cache))
        dup.rpc_id = key[1]
        net.send(Packet(src="client", dst="server", payload=dup))
        sim.run()
        assert len(executions) == 1

    def test_timeout_after_all_attempts(self):
        sim, net, client, server = setup_pair(loss_prob=1.0)

        def handler(request, packet):
            yield sim.timeout(0.1)
            return "never"

        server.register("h", handler)
        proc = sim.spawn(
            client.call("server", "h", None, timeout_us=5.0, max_attempts=3), name="c"
        )
        with pytest.raises(RpcTimeout):
            sim.run_process(proc)


class TestNotify:
    def test_notify_executes_without_reply(self):
        sim, net, client, server = setup_pair()
        seen = []

        def handler(request, packet):
            yield sim.timeout(0.1)
            seen.append(request.args)

        server.register("note", handler)
        client.notify("server", "note", "payload")
        sim.run()
        assert seen == ["payload"]
        # No response packet should have been sent back.
        assert len(client._pending) == 0


class TestMulticast:
    def test_multicast_gathers_all(self):
        sim = Simulator()
        net = Network(sim, single_rack_path([PassthroughSwitch()]))
        client = RpcNode(sim, net, "client")
        servers = [RpcNode(sim, net, f"s{i}") for i in range(3)]

        def make_handler(i):
            def handler(request, packet):
                yield sim.timeout(float(i))
                return f"from-s{i}"

            return handler

        for i, s in enumerate(servers):
            s.register("m", make_handler(i))
        proc = sim.spawn(
            client.multicast_call([f"s{i}" for i in range(3)], "m", None), name="mc"
        )
        values = sim.run_process(proc)
        assert values == ["from-s0", "from-s1", "from-s2"]


class TestCrash:
    def test_dead_node_ignores_traffic(self):
        sim, net, client, server = setup_pair()

        def handler(request, packet):
            yield sim.timeout(0.1)
            return "alive"

        server.register("h", handler)
        server.kill()
        proc = sim.spawn(
            client.call("server", "h", None, timeout_us=5.0, max_attempts=2), name="c"
        )
        with pytest.raises(RpcTimeout):
            sim.run_process(proc)

    def test_revived_node_serves_again(self):
        sim, net, client, server = setup_pair()

        def handler(request, packet):
            yield sim.timeout(0.1)
            return "alive"

        server.register("h", handler)
        server.kill()
        server.revive()
        value, _ = run_call(sim, client, "server", "h", None)
        assert value == "alive"


class TestFaultModelRpc:
    """RPC-layer behaviour under the lossy/duplicating fault model."""

    def test_multicast_completes_under_loss(self):
        sim = Simulator()
        faults = FaultModel(make_rng(3, "loss"), loss_prob=0.3)
        net = Network(sim, single_rack_path([PassthroughSwitch()]), faults=faults)
        client = RpcNode(sim, net, "client")
        servers = [RpcNode(sim, net, f"s{i}") for i in range(4)]
        executions = []

        def make_handler(i):
            def handler(request, packet):
                executions.append((i, request.rpc_id))
                yield sim.timeout(0.5)
                return f"v{i}"

            return handler

        for i, s in enumerate(servers):
            s.register("m", make_handler(i))
        proc = sim.spawn(
            client.multicast_call(
                [f"s{i}" for i in range(4)], "m", None, timeout_us=20.0, max_attempts=10
            ),
            name="mc",
        )
        values = sim.run_process(proc)
        assert values == ["v0", "v1", "v2", "v3"]
        # At-most-once held per destination despite retransmission.
        assert len(executions) == len(set(executions)) == 4

    def test_at_most_once_under_duplication(self):
        sim = Simulator()
        faults = FaultModel(make_rng(5, "dup"), dup_prob=0.5)
        net = Network(sim, single_rack_path([PassthroughSwitch()]), faults=faults)
        client = RpcNode(sim, net, "client")
        server = RpcNode(sim, net, "server")
        executions = []

        def handler(request, packet):
            executions.append(request.rpc_id)
            yield sim.timeout(0.5)
            return "ok"

        server.register("h", handler)
        for _ in range(20):
            value, _ = run_call(sim, client, "server", "h", None)
            assert value == "ok"
        # Every duplicated request hit the reply cache, never the handler.
        assert len(executions) == 20

    def test_reply_cache_bounded_with_eviction_counter(self):
        sim = Simulator()
        net = Network(sim, single_rack_path([PassthroughSwitch()]))
        client = RpcNode(sim, net, "client")
        server = RpcNode(sim, net, "server", reply_cache_limit=8)

        def handler(request, packet):
            yield sim.timeout(0.1)
            return "r"

        server.register("h", handler)
        for _ in range(50):
            run_call(sim, client, "server", "h", None)
        # Two-generation rotation: at most 2x the limit live at once.
        assert len(server._reply_cache) + len(server._reply_cache_old) <= 16
        assert server.reply_cache_evictions > 0

    def test_fresh_header_seq_per_retransmission(self):
        """make_header(attempt) runs per transmission: REMOVE gets a new SEQ."""
        from repro.net import StaleSetHeader, StaleSetOp

        sim, net, client, server = setup_pair()
        sent_seqs = []
        orig_send = net.send

        def spy(p):
            if p.header is not None:
                sent_seqs.append(p.header.seq)
            orig_send(p)

        net.send = spy

        def handler(request, packet):
            yield sim.timeout(50.0)  # slower than the first client timeout
            return "done"

        server.register("h", handler)
        value, _ = run_call(
            sim,
            client,
            "server",
            "h",
            None,
            make_header=lambda attempt: StaleSetHeader(
                op=StaleSetOp.REMOVE, fingerprint=1, seq=attempt
            ),
            timeout_us=10.0,
            max_attempts=8,
        )
        assert value == "done"
        assert len(sent_seqs) >= 2  # at least one retransmission happened
        assert len(set(sent_seqs)) == len(sent_seqs)  # every resend: fresh SEQ

    def test_duplicated_remove_filtered_by_switch_end_to_end(self):
        """A duplicated REMOVE (same SEQ) must not clear a newer insert."""
        from repro.net import Packet, STALESET_PORT, StaleSetHeader, StaleSetOp
        from repro.switchfab import ProgrammableSwitch, StaleSetConfig

        sim = Simulator()
        # dup_prob=1: the fabric duplicates every packet, simulating the
        # worst-case retransmission storm of §4.4.1.
        faults = FaultModel(make_rng(9, "dup"), dup_prob=1.0)
        sw = ProgrammableSwitch(
            stale_config=StaleSetConfig(num_stages=2, index_bits=3),
            fingerprint_owner=lambda fp: "server",
        )
        net = Network(sim, single_rack_path([sw]), faults=faults)
        RpcNode(sim, net, "client")
        RpcNode(sim, net, "server")
        fp = 0x1_0000_0001

        def staleset(op, seq=0):
            return Packet(
                src="server",
                dst="client",
                payload=None,
                port=STALESET_PORT,
                header=StaleSetHeader(op=op, fingerprint=fp, seq=seq),
            )

        net.send(staleset(StaleSetOp.INSERT))
        sim.run()
        net.send(staleset(StaleSetOp.REMOVE, seq=7))  # delivered twice
        sim.run()
        # Re-insert after the remove: the duplicate REMOVE (same seq=7)
        # arriving afterwards must be discarded, not clear this entry.
        net.send(staleset(StaleSetOp.INSERT))
        sim.run()
        probe = sw.process(
            Packet(
                src="client",
                dst="server",
                payload=None,
                port=STALESET_PORT,
                header=StaleSetHeader(op=StaleSetOp.QUERY, fingerprint=fp),
            )
        )
        assert probe[0].header.ret == 1


class TestRawTap:
    def test_tap_consumes_packet(self):
        sim, net, client, server = setup_pair()
        tapped = []

        def tap(packet):
            if packet.payload == "raw":
                tapped.append(packet)
                return True
            return False

        server.add_raw_tap(tap)
        from repro.net import Packet

        net.send(Packet(src="client", dst="server", payload="raw"))
        sim.run()
        assert len(tapped) == 1
