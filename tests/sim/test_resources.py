"""Unit tests for Resource, Lock, RWLock, and Store."""

import pytest

from repro.sim import Lock, Resource, RWLock, SimulationError, Simulator, Store


def test_resource_limits_concurrency():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    active = []
    peaks = []

    def worker(sim, res, tag):
        yield res.acquire()
        active.append(tag)
        peaks.append(len(active))
        yield sim.timeout(10.0)
        active.remove(tag)
        res.release()

    for tag in range(5):
        sim.spawn(worker(sim, res, tag))
    sim.run()
    assert max(peaks) == 2
    assert sim.now == 30.0  # ceil(5/2) waves of 10us


def test_resource_using_helper():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    done = []

    def worker(sim, res, tag):
        yield sim.spawn(res.using(5.0))
        done.append((tag, sim.now))

    sim.spawn(worker(sim, res, "a"))
    sim.spawn(worker(sim, res, "b"))
    sim.run()
    assert done == [("a", 5.0), ("b", 10.0)]


def test_resource_release_without_acquire():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_lock_is_exclusive():
    sim = Simulator()
    lock = Lock(sim)
    order = []

    def worker(sim, lock, tag):
        yield lock.acquire()
        order.append((tag, "in", sim.now))
        yield sim.timeout(3.0)
        order.append((tag, "out", sim.now))
        lock.release()

    sim.spawn(worker(sim, lock, 1))
    sim.spawn(worker(sim, lock, 2))
    sim.run()
    assert order == [(1, "in", 0.0), (1, "out", 3.0), (2, "in", 3.0), (2, "out", 6.0)]


def test_rwlock_readers_share():
    sim = Simulator()
    rw = RWLock(sim)
    times = []

    def reader(sim, rw, tag):
        yield rw.acquire_read()
        times.append((tag, sim.now))
        yield sim.timeout(5.0)
        rw.release_read()

    for tag in range(3):
        sim.spawn(reader(sim, rw, tag))
    sim.run()
    assert [t for _, t in times] == [0.0, 0.0, 0.0]
    assert sim.now == 5.0


def test_rwlock_writer_excludes_readers():
    sim = Simulator()
    rw = RWLock(sim)
    log = []

    def writer(sim, rw):
        yield rw.acquire_write()
        log.append(("w-in", sim.now))
        yield sim.timeout(4.0)
        log.append(("w-out", sim.now))
        rw.release_write()

    def reader(sim, rw):
        yield sim.timeout(1.0)  # arrive while writer holds
        yield rw.acquire_read()
        log.append(("r-in", sim.now))
        rw.release_read()

    sim.spawn(writer(sim, rw))
    sim.spawn(reader(sim, rw))
    sim.run()
    assert log == [("w-in", 0.0), ("w-out", 4.0), ("r-in", 4.0)]


def test_rwlock_fifo_prevents_writer_starvation():
    """A writer queued behind readers blocks later readers (FIFO fairness)."""
    sim = Simulator()
    rw = RWLock(sim)
    log = []

    def early_reader(sim, rw):
        yield rw.acquire_read()
        yield sim.timeout(10.0)
        rw.release_read()

    def writer(sim, rw):
        yield sim.timeout(1.0)
        yield rw.acquire_write()
        log.append(("writer", sim.now))
        yield sim.timeout(5.0)
        rw.release_write()

    def late_reader(sim, rw):
        yield sim.timeout(2.0)
        yield rw.acquire_read()
        log.append(("late-reader", sim.now))
        rw.release_read()

    sim.spawn(early_reader(sim, rw))
    sim.spawn(writer(sim, rw))
    sim.spawn(late_reader(sim, rw))
    sim.run()
    assert log == [("writer", 10.0), ("late-reader", 15.0)]


def test_rwlock_release_errors():
    sim = Simulator()
    rw = RWLock(sim)
    with pytest.raises(SimulationError):
        rw.release_read()
    with pytest.raises(SimulationError):
        rw.release_write()


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, store):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    sim.spawn(consumer(sim, store))
    store.put("x")
    store.put("y")
    store.put("z")
    sim.run()
    assert got == ["x", "y", "z"]


def test_store_blocking_get_wakes_on_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, store):
        item = yield store.get()
        got.append((item, sim.now))

    def producer(sim, store):
        yield sim.timeout(7.0)
        store.put("late")

    sim.spawn(consumer(sim, store))
    sim.spawn(producer(sim, store))
    sim.run()
    assert got == [("late", 7.0)]


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put(1)
    assert store.try_get() == 1
    assert store.try_get() is None
