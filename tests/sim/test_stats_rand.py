"""Unit and property tests for stats helpers and seeded randomness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    AliasTable,
    Counter,
    LatencyRecorder,
    ThroughputMeter,
    ZipfGenerator,
    make_rng,
    percentile,
    weighted_choice,
    zipf_weights,
)


class TestPercentile:
    def test_single_sample(self):
        assert percentile([7.0], 50) == 7.0

    def test_median_of_two(self):
        assert percentile([1.0, 3.0], 50) == 2.0

    def test_extremes(self):
        xs = [5.0, 1.0, 3.0]
        assert percentile(xs, 0) == 1.0
        assert percentile(xs, 100) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200),
           st.floats(min_value=0, max_value=100))
    def test_bounded_by_min_max(self, xs, q):
        p = percentile(xs, q)
        assert min(xs) <= p <= max(xs)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=100))
    def test_monotone_in_q(self, xs):
        assert percentile(xs, 10) <= percentile(xs, 50) <= percentile(xs, 99)


class TestLatencyRecorder:
    def test_mean_and_percentile(self):
        rec = LatencyRecorder()
        for v in [1.0, 2.0, 3.0]:
            rec.record(v, op="create")
        assert rec.mean("create") == 2.0
        assert rec.p(100, "create") == 3.0
        assert rec.count("create") == 3

    def test_negative_rejected(self):
        rec = LatencyRecorder()
        with pytest.raises(ValueError):
            rec.record(-1.0)

    def test_missing_op_raises(self):
        rec = LatencyRecorder()
        with pytest.raises(ValueError):
            rec.mean("nope")

    def test_merge(self):
        a, b = LatencyRecorder(), LatencyRecorder()
        a.record(1.0, "x")
        b.record(3.0, "x")
        a.merge(b)
        assert a.mean("x") == 2.0


class TestThroughputMeter:
    def test_ops_per_sec(self):
        m = ThroughputMeter()
        m.start(0.0)
        for _ in range(50):
            m.record()
        m.stop(1_000_000.0)  # one virtual second
        assert m.ops_per_sec() == 50.0

    def test_records_outside_window_ignored(self):
        m = ThroughputMeter()
        m.record()  # before start: ignored
        m.start(0.0)
        m.record()
        m.stop(1e6)
        m.record()  # after stop: ignored
        assert m.count == 1

    def test_unclosed_window_rejected(self):
        m = ThroughputMeter()
        m.start(0.0)
        with pytest.raises(ValueError):
            m.ops_per_sec()


def test_counter():
    c = Counter()
    c.inc("hit")
    c.inc("hit", 2)
    assert c.get("hit") == 3
    assert c.get("miss") == 0
    assert c.as_dict() == {"hit": 3}


class TestRng:
    def test_same_seed_same_stream(self):
        a = make_rng(7, "w")
        b = make_rng(7, "w")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_decorrelated(self):
        a = make_rng(7, "w")
        b = make_rng(7, "net")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestZipf:
    def test_uniform_when_theta_zero(self):
        z = ZipfGenerator(10, 0.0, make_rng(1, "z"))
        counts = [0] * 10
        for _ in range(20_000):
            counts[z.sample()] += 1
        # Each bucket should be near 2000.
        assert all(1600 < c < 2400 for c in counts)

    def test_skew_concentrates_on_low_ranks(self):
        z = ZipfGenerator(1000, 0.99, make_rng(1, "z"))
        samples = [z.sample() for _ in range(20_000)]
        hot = sum(1 for s in samples if s < 100)
        # With theta=0.99 the top-10% of ranks take well over half the mass.
        assert hot / len(samples) > 0.6

    def test_bounds(self):
        z = ZipfGenerator(5, 1.2, make_rng(3, "z"))
        for _ in range(1000):
            assert 0 <= z.sample() < 5

    def test_invalid_params(self):
        rng = make_rng(0, "z")
        with pytest.raises(ValueError):
            ZipfGenerator(0, 1.0, rng)
        with pytest.raises(ValueError):
            ZipfGenerator(10, -1.0, rng)

    @settings(max_examples=20)
    @given(n=st.integers(min_value=1, max_value=500),
           theta=st.floats(min_value=0, max_value=2))
    def test_always_in_range(self, n, theta):
        z = ZipfGenerator(n, theta, make_rng(42, "prop"))
        for _ in range(50):
            assert 0 <= z.sample() < n


class TestWeightedChoice:
    def test_deterministic_single(self):
        assert weighted_choice(["a"], [1.0], make_rng(0, "wc")) == "a"

    def test_zero_weight_never_chosen(self):
        rng = make_rng(5, "wc")
        picks = {weighted_choice(["a", "b"], [0.0, 1.0], rng) for _ in range(200)}
        assert picks == {"b"}

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            weighted_choice(["a"], [1.0, 2.0], make_rng(0, "wc"))

    def test_nonpositive_total(self):
        with pytest.raises(ValueError):
            weighted_choice(["a"], [0.0], make_rng(0, "wc"))


class _CountingRng:
    """Wraps an RNG counting random() calls (the one-draw invariant)."""

    def __init__(self, rng):
        self._rng = rng
        self.calls = 0

    def random(self):
        self.calls += 1
        return self._rng.random()


class TestAliasTable:
    def test_single_item(self):
        t = AliasTable([3.0])
        rng = make_rng(0, "alias")
        assert all(t.sample(rng) == 0 for _ in range(50))

    def test_zero_weight_never_sampled(self):
        t = AliasTable([0.0, 1.0, 0.0])
        rng = make_rng(1, "alias")
        assert {t.sample(rng) for _ in range(500)} == {1}

    def test_distribution_tracks_weights(self):
        weights = [1.0, 2.0, 7.0]
        t = AliasTable(weights)
        rng = make_rng(2, "alias")
        counts = [0, 0, 0]
        n = 30_000
        for _ in range(n):
            counts[t.sample(rng)] += 1
        for c, w in zip(counts, weights):
            assert abs(c / n - w / 10.0) < 0.02

    def test_matches_weighted_choice_distribution_on_zipf(self):
        weights = zipf_weights(64, 0.99)
        t = AliasTable(weights)
        rng = make_rng(3, "alias")
        counts = [0] * 64
        for _ in range(20_000):
            counts[t.sample(rng)] += 1
        # Rank 0 is hottest and the tail is rarely drawn.
        assert counts[0] == max(counts)
        assert counts[0] > 5 * counts[-1]

    def test_deterministic(self):
        t = AliasTable([0.5, 1.5, 3.0, 1.0])
        seq1 = [t.sample(make_rng(4, "alias")) for _ in range(1)]
        r1, r2 = make_rng(4, "alias"), make_rng(4, "alias")
        assert [t.sample(r1) for _ in range(200)] == [
            t.sample(r2) for _ in range(200)
        ]
        assert seq1[0] == t.sample(make_rng(4, "alias"))

    def test_one_uniform_per_sample(self):
        # The population engine's cross-size determinism rests on this:
        # a sample consumes exactly one uniform regardless of table size.
        for n in (1, 7, 1000):
            t = AliasTable(zipf_weights(n, 0.99))
            rng = _CountingRng(make_rng(5, "alias"))
            for _ in range(100):
                t.sample(rng)
            assert rng.calls == 100

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            AliasTable([])
        with pytest.raises(ValueError):
            AliasTable([0.0, 0.0])
        with pytest.raises(ValueError):
            AliasTable([1.0, -0.5])


class TestZipfWeights:
    def test_shape(self):
        w = zipf_weights(10, 0.99)
        assert len(w) == 10 and w[0] == 1.0
        assert list(w) == sorted(w, reverse=True)

    def test_theta_zero_uniform(self):
        assert set(zipf_weights(5, 0.0)) == {1.0}

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(5, -0.1)
