"""Property tests: RWLock safety and FIFO fairness under random schedules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RWLock, Simulator

# Each actor: (is_writer, arrival_delay, hold_time)
actors = st.lists(
    st.tuples(
        st.booleans(),
        st.floats(min_value=0, max_value=20),
        st.floats(min_value=0.1, max_value=5),
    ),
    min_size=1,
    max_size=14,
)


@settings(max_examples=150)
@given(actors=actors)
def test_rwlock_safety_invariant(actors):
    """At no instant may a writer coexist with any other holder."""
    sim = Simulator()
    rw = RWLock(sim)
    state = {"readers": 0, "writer": False}
    violations = []

    def actor(is_writer, delay, hold):
        yield sim.timeout(delay)
        if is_writer:
            yield rw.acquire_write()
            if state["writer"] or state["readers"]:
                violations.append("writer overlap")
            state["writer"] = True
            yield sim.timeout(hold)
            state["writer"] = False
            rw.release_write()
        else:
            yield rw.acquire_read()
            if state["writer"]:
                violations.append("reader during writer")
            state["readers"] += 1
            yield sim.timeout(hold)
            state["readers"] -= 1
            rw.release_read()

    for is_writer, delay, hold in actors:
        sim.spawn(actor(is_writer, delay, hold))
    sim.run()
    assert not violations
    assert state == {"readers": 0, "writer": False}
    assert not rw.write_locked and rw.readers == 0


@settings(max_examples=100)
@given(actors=actors)
def test_rwlock_all_actors_eventually_served(actors):
    """No starvation: every acquisition completes (the sim drains)."""
    sim = Simulator()
    rw = RWLock(sim)
    served = []

    def actor(idx, is_writer, delay, hold):
        yield sim.timeout(delay)
        if is_writer:
            yield rw.acquire_write()
            yield sim.timeout(hold)
            rw.release_write()
        else:
            yield rw.acquire_read()
            yield sim.timeout(hold)
            rw.release_read()
        served.append(idx)

    for idx, (is_writer, delay, hold) in enumerate(actors):
        sim.spawn(actor(idx, is_writer, delay, hold))
    sim.run()
    assert sorted(served) == list(range(len(actors)))


@settings(max_examples=100)
@given(
    writer_delay=st.floats(min_value=0.5, max_value=3),
    n_late_readers=st.integers(min_value=1, max_value=6),
)
def test_rwlock_writers_not_starved_by_reader_stream(writer_delay, n_late_readers):
    """A writer queued behind readers runs before readers that arrived
    after it (strict FIFO prevents writer starvation)."""
    sim = Simulator()
    rw = RWLock(sim)
    order = []

    def early_reader():
        yield rw.acquire_read()
        yield sim.timeout(10.0)
        rw.release_read()

    def writer():
        yield sim.timeout(writer_delay)
        yield rw.acquire_write()
        order.append("writer")
        yield sim.timeout(1.0)
        rw.release_write()

    def late_reader(i):
        yield sim.timeout(writer_delay + 0.1 + i * 0.01)
        yield rw.acquire_read()
        order.append(f"late{i}")
        rw.release_read()

    sim.spawn(early_reader())
    sim.spawn(writer())
    for i in range(n_late_readers):
        sim.spawn(late_reader(i))
    sim.run()
    assert order[0] == "writer"
