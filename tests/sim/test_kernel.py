"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    AllOf,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim, out):
        yield sim.timeout(5.0)
        out.append(sim.now)
        yield sim.timeout(2.5)
        out.append(sim.now)

    out = []
    sim.spawn(proc(sim, out))
    sim.run()
    assert out == [5.0, 7.5]


def test_zero_delay_timeout_runs_same_time():
    sim = Simulator()
    seen = []

    def proc(sim):
        yield sim.timeout(0.0)
        seen.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert seen == [0.0]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_event_value_delivery():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter(sim, ev):
        value = yield ev
        got.append(value)

    def firer(sim, ev):
        yield sim.timeout(3.0)
        ev.succeed("payload")

    sim.spawn(waiter(sim, ev))
    sim.spawn(firer(sim, ev))
    sim.run()
    assert got == ["payload"]


def test_event_failure_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter(sim, ev):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.spawn(waiter(sim, ev))
    ev.fail(RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_process_return_value():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1.0)
        return 42

    def parent(sim, out):
        value = yield sim.spawn(child(sim))
        out.append(value)

    out = []
    sim.spawn(parent(sim, out))
    sim.run()
    assert out == [42]


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1.0)
        raise ValueError("child died")

    def parent(sim, out):
        try:
            yield sim.spawn(child(sim))
        except ValueError as exc:
            out.append(str(exc))

    out = []
    sim.spawn(parent(sim, out))
    sim.run()
    assert out == ["child died"]


def test_unwaited_process_failure_is_recorded_on_event():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1.0)
        raise ValueError("unobserved")

    proc = sim.spawn(child(sim))
    sim.run()
    assert proc.triggered and not proc.ok
    with pytest.raises(ValueError):
        _ = proc.value


def test_all_of_collects_in_order():
    sim = Simulator()

    def child(sim, delay, value):
        yield sim.timeout(delay)
        return value

    def parent(sim, out):
        procs = [
            sim.spawn(child(sim, 3.0, "a")),
            sim.spawn(child(sim, 1.0, "b")),
            sim.spawn(child(sim, 2.0, "c")),
        ]
        values = yield AllOf(sim, procs)
        out.append(values)
        out.append(sim.now)

    out = []
    sim.spawn(parent(sim, out))
    sim.run()
    assert out == [["a", "b", "c"], 3.0]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    done = []

    def parent(sim):
        values = yield AllOf(sim, [])
        done.append(values)

    sim.spawn(parent(sim))
    sim.run()
    assert done == [[]]


def test_any_of_returns_first():
    sim = Simulator()

    def child(sim, delay, value):
        yield sim.timeout(delay)
        return value

    def parent(sim, out):
        procs = [
            sim.spawn(child(sim, 3.0, "slow")),
            sim.spawn(child(sim, 1.0, "fast")),
        ]
        idx, value = yield sim.any_of(procs)
        out.append((idx, value, sim.now))

    out = []
    sim.spawn(parent(sim, out))
    sim.run()
    assert out == [(1, "fast", 1.0)]


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
            log.append("slept-through")
        except Interrupt as intr:
            log.append(("interrupted", intr.cause, sim.now))

    def interrupter(sim, target):
        yield sim.timeout(2.0)
        target.interrupt("wake")

    target = sim.spawn(sleeper(sim))
    sim.spawn(interrupter(sim, target))
    sim.run()
    assert log == [("interrupted", "wake", 2.0)]


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    proc = sim.spawn(quick(sim))
    sim.run()
    proc.interrupt("late")  # must not raise
    sim.run()
    assert proc.ok


def test_run_until_stops_clock_exactly():
    sim = Simulator()

    def ticker(sim, out):
        while True:
            yield sim.timeout(10.0)
            out.append(sim.now)

    out = []
    sim.spawn(ticker(sim, out))
    sim.run(until=35.0)
    assert out == [10.0, 20.0, 30.0]
    assert sim.now == 35.0


def test_run_process_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(4.0)
        return "done"

    p = sim.spawn(proc(sim))
    assert sim.run_process(p) == "done"


def test_run_process_detects_deadlock():
    sim = Simulator()

    def proc(sim, ev):
        yield ev  # never fires

    ev = sim.event()
    p = sim.spawn(proc(sim, ev))
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_process(p)


def test_yield_non_event_fails_process():
    sim = Simulator()

    def proc(sim):
        yield 12345  # not an Event

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.triggered and not p.ok


def test_deterministic_tie_breaking():
    """Events at equal time run in creation order."""
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.spawn(proc(sim, tag))
    sim.run()
    assert order == ["a", "b", "c"]
