"""Regression tests for the kernel fast paths (DESIGN.md §9).

Covers the single-waiter callback slot, process boot without a kick-off
event, the immediate-grant trampoline, Timeout pooling, combinator
callback detaching, and interrupt catch/re-raise semantics.
"""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupt,
    Lock,
    Resource,
    RWLock,
    SimulationError,
    Simulator,
    Store,
)


# ---------------------------------------------------------------------------
# single-waiter callback slot
# ---------------------------------------------------------------------------


class TestCallbackStorage:
    def test_no_list_for_single_waiter(self):
        sim = Simulator()
        ev = sim.event()
        ev.add_callback(lambda e: None)
        assert ev.callbacks is None  # overflow list never allocated

    def test_callbacks_run_in_registration_order(self):
        sim = Simulator()
        ev = sim.event()
        order = []
        for tag in ("a", "b", "c"):
            ev.add_callback(lambda e, tag=tag: order.append(tag))
        ev.succeed()
        sim.run()
        assert order == ["a", "b", "c"]

    def test_discard_slot_callback_promotes_list_head(self):
        sim = Simulator()
        ev = sim.event()
        order = []
        cbs = [lambda e, tag=tag: order.append(tag) for tag in ("a", "b", "c")]
        for cb in cbs:
            ev.add_callback(cb)
        ev._discard_callback(cbs[0])
        ev.add_callback(lambda e: order.append("d"))
        ev.succeed()
        sim.run()
        assert order == ["b", "c", "d"]  # order preserved after promotion

    def test_add_callback_after_processed_runs_immediately(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("x")
        sim.run()
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        assert got == ["x"]


# ---------------------------------------------------------------------------
# process boot and the immediate-resume trampoline
# ---------------------------------------------------------------------------


class TestProcessFastPath:
    def test_spawn_defers_first_step_to_the_loop(self):
        sim = Simulator()
        started = []

        def proc(sim):
            started.append(sim.now)
            yield sim.timeout(1.0)

        sim.spawn(proc(sim))
        assert started == []  # not started inline at spawn time
        sim.run()
        assert started == [0.0]

    def test_spawn_interleaves_with_pending_events_fifo(self):
        """A pending event queued before spawn still runs first (seed order)."""
        sim = Simulator()
        order = []
        ev = sim.event()
        ev.add_callback(lambda e: order.append("event"))
        ev.succeed()

        def proc(sim):
            order.append("process")
            yield sim.timeout(1.0)

        sim.spawn(proc(sim))
        sim.run()
        assert order == ["event", "process"]

    def test_yield_processed_event_resumes_inline_without_heap(self):
        sim = Simulator()
        granted = sim.granted("v")
        out = []

        def proc(sim):
            for _ in range(3):
                out.append((yield granted))

        sim.spawn(proc(sim))
        sim.run()
        assert out == ["v", "v", "v"]

    def test_deep_immediate_resume_chain_does_not_recurse(self):
        """50k immediate grants in a row must not blow the Python stack."""
        sim = Simulator()
        store = Store(sim)
        n = 50_000

        def proc(sim):
            for i in range(n):
                store.put(i)
                got = yield store.get()
                assert got == i

        done = sim.spawn(proc(sim))
        sim.run()
        assert done.ok

    def test_granted_none_is_shared_and_immutable(self):
        sim = Simulator()
        a, b = sim.granted(), sim.granted()
        assert a is b
        assert a.processed and a.ok
        with pytest.raises(SimulationError):
            a.succeed()

    def test_granted_value_events_are_distinct(self):
        sim = Simulator()
        a, b = sim.granted(1), sim.granted(2)
        assert a is not b
        assert a.value == 1 and b.value == 2


# ---------------------------------------------------------------------------
# Timeout pooling
# ---------------------------------------------------------------------------


class TestTimeoutPool:
    def test_unreferenced_timeouts_are_recycled(self):
        sim = Simulator()

        def proc(sim):
            for _ in range(10):
                yield sim.timeout(1.0)

        sim.spawn(proc(sim))
        sim.run()
        assert len(sim._timeout_pool) >= 1

    def test_referenced_timeout_is_never_recycled(self):
        sim = Simulator()
        held = []

        def proc(sim):
            t = sim.timeout(1.0)
            held.append(t)
            yield t
            yield sim.timeout(1.0)

        sim.spawn(proc(sim))
        sim.run()
        assert held[0] not in sim._timeout_pool
        assert held[0].processed  # the held object's terminal state is intact

    def test_recycled_timeout_reused_with_fresh_state(self):
        sim = Simulator()
        times = []

        def proc(sim):
            got = yield sim.timeout(1.0, "first")
            times.append((sim.now, got))
            got = yield sim.timeout(2.5, "second")
            times.append((sim.now, got))

        sim.spawn(proc(sim))
        sim.run()
        assert times == [(1.0, "first"), (3.5, "second")]

    def test_pooled_negative_delay_still_rejected(self):
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(1.0)

        sim.spawn(proc(sim))
        sim.run()
        assert sim._timeout_pool  # reuse path is active
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_allof_over_timeouts_reads_correct_values(self):
        """Constituents referenced by a combinator must not be recycled."""
        sim = Simulator()
        out = []

        def proc(sim):
            values = yield AllOf(sim, [sim.timeout(1.0, "a"), sim.timeout(2.0, "b")])
            out.append(values)

        sim.spawn(proc(sim))
        sim.run()
        assert out == [["a", "b"]]


# ---------------------------------------------------------------------------
# resource immediate grants
# ---------------------------------------------------------------------------


class TestImmediateGrants:
    def test_free_resource_grant_is_processed(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        ev = res.acquire()
        assert ev.processed and ev.ok
        assert res.in_use == 1

    def test_contended_resource_grant_is_pending(self):
        sim = Simulator()
        lock = Lock(sim)
        first = lock.acquire()
        second = lock.acquire()
        assert first.processed
        assert not second.triggered
        lock.release()
        assert second.triggered and not second.processed  # wakes via the heap

    def test_rwlock_uncontended_paths(self):
        sim = Simulator()
        rw = RWLock(sim)
        r = rw.acquire_read()
        assert r.processed
        rw.release_read()
        w = rw.acquire_write()
        assert w.processed
        rw.release_write()

    def test_store_get_with_items_is_processed(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        ev = store.get()
        assert ev.processed and ev.value == "x"

    def test_store_put_none_delivers_none(self):
        sim = Simulator()
        store = Store(sim)
        store.put(None)
        got = []

        def proc(sim):
            got.append((yield store.get()))

        sim.spawn(proc(sim))
        sim.run()
        assert got == [None]


# ---------------------------------------------------------------------------
# combinator callback leak (satellite fix)
# ---------------------------------------------------------------------------


def _dangling(ev):
    return (1 if ev._cb1 is not None else 0) + len(ev.callbacks or ())


class TestCombinatorDetach:
    def test_anyof_detaches_losers(self):
        sim = Simulator()
        fast, slow = sim.timeout(1.0, "fast"), sim.event()
        out = []

        def proc(sim):
            out.append((yield AnyOf(sim, [fast, slow])))

        sim.spawn(proc(sim))
        sim.run()
        assert out == [(0, "fast")]
        assert _dangling(slow) == 0  # loser holds no combinator callback

    def test_allof_detaches_on_failure(self):
        sim = Simulator()
        doomed, pending = sim.event(), sim.event()
        caught = []

        def proc(sim):
            try:
                yield AllOf(sim, [doomed, pending])
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.spawn(proc(sim))
        doomed.fail(RuntimeError("boom"))
        sim.run()
        assert caught == ["boom"]
        assert _dangling(pending) == 0

    def test_anyof_loser_can_still_fire_safely(self):
        sim = Simulator()
        a, b = sim.event(), sim.event()
        out = []

        def proc(sim):
            out.append((yield AnyOf(sim, [a, b])))

        sim.spawn(proc(sim))
        a.succeed("first")
        sim.run()
        b.succeed("late")  # detached: firing the loser is inert
        sim.run()
        assert out == [(0, "first")]


# ---------------------------------------------------------------------------
# interrupt delivery: catch vs re-raise (satellite fix for _step_throw)
# ---------------------------------------------------------------------------


class TestInterruptHandling:
    def test_process_catches_interrupt_and_continues(self):
        sim = Simulator()
        log = []

        def worker(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt as intr:
                log.append(("caught", intr.cause, sim.now))
            yield sim.timeout(5.0)
            log.append(("done", sim.now))
            return "finished"

        def poker(sim, target):
            yield sim.timeout(2.0)
            target.interrupt("poke")

        target = sim.spawn(worker(sim))
        sim.spawn(poker(sim, target))
        sim.run()
        assert log == [("caught", "poke", 2.0), ("done", 7.0)]
        assert target.ok and target.value == "finished"

    def test_process_reraises_interrupt_and_fails(self):
        sim = Simulator()

        def worker(sim):
            yield sim.timeout(100.0)

        def poker(sim, target):
            yield sim.timeout(2.0)
            target.interrupt("fatal")

        target = sim.spawn(worker(sim))
        sim.spawn(poker(sim, target))
        sim.run()
        assert target.triggered and not target.ok
        with pytest.raises(Interrupt):
            _ = target.value

    def test_process_translates_interrupt_into_new_exception(self):
        """The old dead `err is exc` branch: a *different* exception escaping
        the handler must fail the process with the new exception."""
        sim = Simulator()

        def worker(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt as intr:
                raise ValueError(f"translated {intr.cause}") from intr

        def poker(sim, target):
            yield sim.timeout(2.0)
            target.interrupt("x")

        target = sim.spawn(worker(sim))
        sim.spawn(poker(sim, target))
        sim.run()
        with pytest.raises(ValueError, match="translated x"):
            _ = target.value
