"""Determinism regression: same seed ⇒ bit-identical results.

The kernel fast paths (DESIGN.md §9) remove allocations and heap traffic
but must never perturb event ordering: two runs of the same seeded
workload have to produce byte-identical latency sample streams, phase
totals, and virtual-time measurements.  These tests run small versions
of the figure benchmarks twice and diff every ``RunResult`` field.
"""

from repro.bench import make_cluster, run_stream, scaled_config
from repro.core.cluster import SwitchFSCluster
from repro.net import FaultModel
from repro.sim import make_rng
from repro.workloads import (
    FixedOpStream,
    MixStream,
    THUMBNAIL_MIX,
    bootstrap,
    multiple_directories,
    single_large_directory,
)


def _fingerprint(result):
    """Every observable field of a RunResult, in a comparable form.

    ``latency.samples`` preserves recording order, so equality here means
    the interleaving of op completions matched event-for-event, not just
    the aggregate statistics.
    """
    return {
        "ops_completed": result.ops_completed,
        "sim_elapsed_us": result.sim_elapsed_us,
        "inflight": result.inflight,
        "samples": {op: result.latency.samples(op) for op in sorted(result.latency.ops())},
        "phase_totals": result.phases.as_dict(),
        "phase_counts": {p: result.phases.count(p) for p in result.phases.phases()},
    }


def _hotspot_point(system: str):
    """Small fig-11-style point: contended create on one shared directory."""
    cluster = make_cluster(system, scaled_config(num_servers=4, seed=17))
    pop = bootstrap(cluster, single_large_directory(400), warm_clients=[0])
    stream = FixedOpStream("create", pop, seed=17, dir_choice="single")
    return run_stream(cluster, stream, total_ops=250, inflight=16)


def _mix_point():
    """Small workload-mix point exercising the cross-op scheduler paths."""
    cluster = make_cluster("SwitchFS", scaled_config(num_servers=4, seed=23))
    pop = bootstrap(cluster, multiple_directories(16, 8), warm_clients=[0])
    stream = MixStream(THUMBNAIL_MIX, pop, seed=23)
    return run_stream(cluster, stream, total_ops=250, inflight=8)


def _faulty_point():
    """Hotspot point over a lossy, duplicating fabric.

    Exercises the datapath fast paths end to end — inline serve dispatch,
    scatter-gather multicast, packet pooling, retransmission, and the
    reply cache — under fault injection, where a single perturbed event
    ordering would cascade into different retransmit decisions.
    """
    cluster = SwitchFSCluster(
        scaled_config(num_servers=4, seed=31),
        faults=FaultModel(make_rng(31, "net"), loss_prob=0.05, dup_prob=0.05),
    )
    pop = bootstrap(cluster, single_large_directory(200), warm_clients=[0])
    stream = FixedOpStream("create", pop, seed=31, dir_choice="single")
    return run_stream(cluster, stream, total_ops=200, inflight=8)


class TestRunDeterminism:
    def test_switchfs_hotspot_identical_across_runs(self):
        assert _fingerprint(_hotspot_point("SwitchFS")) == _fingerprint(
            _hotspot_point("SwitchFS")
        )

    def test_baseline_hotspot_identical_across_runs(self):
        assert _fingerprint(_hotspot_point("InfiniFS")) == _fingerprint(
            _hotspot_point("InfiniFS")
        )

    def test_mix_stream_identical_across_runs(self):
        assert _fingerprint(_mix_point()) == _fingerprint(_mix_point())

    def test_inline_dispatch_identical_under_faults(self):
        """The inlined RPC dispatch must stay bit-identical per seed even
        when loss/duplication drives the retransmission machinery."""
        assert _fingerprint(_faulty_point()) == _fingerprint(_faulty_point())

    def test_different_load_actually_changes_the_run(self):
        """Guard against the fingerprint being insensitive (e.g. all-empty)."""
        base = _fingerprint(_hotspot_point("SwitchFS"))
        cluster = make_cluster("SwitchFS", scaled_config(num_servers=4, seed=17))
        pop = bootstrap(cluster, single_large_directory(400), warm_clients=[0])
        stream = FixedOpStream("create", pop, seed=17, dir_choice="single")
        other = _fingerprint(run_stream(cluster, stream, total_ops=250, inflight=4))
        assert base["samples"]["all"]  # non-trivial sample stream
        assert base != other
