"""ASCII charts and per-op latency labelling."""

import pytest

from repro.bench import Series, ascii_chart, run_stream
from repro.core import FSConfig, SwitchFSCluster
from repro.workloads import (
    DATA_CENTER_SERVICES_MIX,
    MixStream,
    bootstrap,
    multiple_directories,
)


class TestAsciiChart:
    def make_series(self):
        s = Series("demo", "servers", "Kops/s")
        s.add("A", 2, 100.0)
        s.add("A", 8, 400.0)
        s.add("B", 2, 50.0)
        return s

    def test_bars_scale_to_peak(self):
        text = ascii_chart(self.make_series(), width=20)
        lines = text.splitlines()
        a8 = next(l for l in lines if l.startswith("A @8"))
        b2 = next(l for l in lines if l.startswith("B @2"))
        assert a8.count("█") == 20      # the peak fills the width
        assert 0 < b2.count("█") <= 3   # 50/400 of 20 chars

    def test_values_printed(self):
        text = ascii_chart(self.make_series())
        assert "400.0" in text and "50.0" in text

    def test_empty_series(self):
        s = Series("empty", "x", "y")
        assert "no numeric data" in ascii_chart(s)

    def test_non_numeric_points_skipped(self):
        s = Series("mixed", "x", "y")
        s.add("A", 1, 10.0)
        s.add("A", 2, "-")
        text = ascii_chart(s)
        assert "@1" in text and "@2" not in text


class TestPerOpLabels:
    def test_mix_stream_latency_breakdown(self):
        cluster = SwitchFSCluster(FSConfig(num_servers=2, cores_per_server=2, seed=55))
        pop = bootstrap(cluster, multiple_directories(8, 4), warm_clients=[0])
        stream = MixStream(DATA_CENTER_SERVICES_MIX, pop, seed=55, data_enabled=False)
        result = run_stream(cluster, stream, total_ops=150, inflight=8)
        ops_seen = set(result.latency.ops())
        # The dominant ops of the mix must each have their own series.
        assert {"open", "close", "stat"} <= ops_seen
        total_labeled = sum(
            result.latency.count(op) for op in ops_seen if op != "all"
        )
        assert total_labeled == result.latency.count("all") == 150
        # Directory updates cost more than cached stats on average.
        if "create" in ops_seen:
            assert result.latency.mean("create") > 0
