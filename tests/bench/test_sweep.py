"""Tests for the process-pool sweep runner (repro.bench.sweep)."""

from repro.bench import (
    SweepPool,
    derive_seed,
    find_peak_throughput,
    run_stream,
    sweep_points,
)
from repro.core import FSConfig, SwitchFSCluster
from repro.workloads import FixedOpStream, bootstrap, multiple_directories


import pytest


def square(x):
    return x * x


def boom(x):
    """Module-level (picklable) worker that crashes on one input."""
    if x == 2:
        raise ValueError(f"worker exploded on {x}")
    return x


def tiny_run(inflight):
    """Module-level (picklable) benchmark point: one small stat run."""
    cluster = SwitchFSCluster(FSConfig(num_servers=2, cores_per_server=2, seed=71))
    pop = bootstrap(cluster, multiple_directories(4, 4), warm_clients=[0])
    stream = FixedOpStream("stat", pop, seed=71)
    return run_stream(cluster, stream, total_ops=80, inflight=inflight)


def run_fingerprint(result):
    """Byte-comparable projection of a RunResult."""
    return (
        result.ops_completed,
        result.sim_elapsed_us,
        result.inflight,
        {op: result.latency.samples(op) for op in sorted(result.latency.ops())},
        result.phases.as_dict(),
    )


class TestSweepPool:
    def test_serial_map_preserves_order(self):
        pool = SweepPool(serial=True)
        assert pool.map(square, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_map_matches_serial(self):
        serial = SweepPool(serial=True).map(square, list(range(8)))
        parallel = SweepPool(max_workers=2, serial=False).map(square, list(range(8)))
        assert parallel == serial

    def test_single_point_runs_in_process(self):
        pool = SweepPool(max_workers=4, serial=False)
        assert pool.map(square, [5]) == [25]

    def test_env_escape_hatch_forces_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_SERIAL", "1")
        assert SweepPool().serial

    def test_single_core_defaults_to_serial(self):
        assert SweepPool(max_workers=1).serial

    def test_sweep_points_wrapper(self):
        assert sweep_points(square, [2, 4], serial=True) == [4, 16]

    def test_worker_crash_propagates_from_pool(self):
        """A crash in a pool worker surfaces as the original exception,
        not a hang or a silently truncated result list."""
        with pytest.raises(ValueError, match="worker exploded on 2"):
            SweepPool(max_workers=2, serial=False).map(boom, [0, 1, 2, 3])

    def test_worker_crash_propagates_serially(self):
        with pytest.raises(ValueError, match="worker exploded on 2"):
            SweepPool(serial=True).map(boom, [0, 1, 2, 3])

    def test_benchmark_point_identical_serial_vs_pool(self):
        """A real simulation point returns bit-identical results from a
        worker process and from the in-process escape hatch."""
        (serial_result,) = SweepPool(serial=True).map(tiny_run, [4])
        pooled = SweepPool(max_workers=2, serial=False).map(tiny_run, [4, 8])
        assert run_fingerprint(pooled[0]) == run_fingerprint(serial_result)


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(17, "SwitchFS", "create", 8) == derive_seed(
            17, "SwitchFS", "create", 8
        )

    def test_distinct_points_get_distinct_seeds(self):
        seeds = {
            derive_seed(17, system, op, n)
            for system in ("SwitchFS", "InfiniFS")
            for op in ("create", "stat")
            for n in (2, 8)
        }
        assert len(seeds) == 8

    def test_non_negative_31_bit(self):
        s = derive_seed(0, "x")
        assert 0 <= s < 2**31

    def test_pinned_values(self):
        """Exact pins: a CRC/repr change would silently re-seed every
        sweep point and invalidate all recorded figures."""
        assert derive_seed(17, "SwitchFS", "create", 8) == 1226099211
        assert derive_seed(42, "fig11") == 1019583860
        assert derive_seed(0, "x") == 688745975


class TestFindPeakWithPool:
    def test_pool_mode_picks_same_peak_as_serial(self):
        levels = (2, 4, 8)
        serial_best = find_peak_throughput(tiny_run, inflight_levels=levels)
        pooled_best = find_peak_throughput(
            tiny_run, inflight_levels=levels, pool=SweepPool(max_workers=2, serial=False)
        )
        assert pooled_best.inflight == serial_best.inflight
        assert run_fingerprint(pooled_best) == run_fingerprint(serial_best)
