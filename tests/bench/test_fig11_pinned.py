"""Pinned fig-11 values: the storage-engine rewrite must not move the sim.

KV and WAL operations consume zero virtual time (only ``_cpu`` charges
advance the clock), so the LSM memtable, incremental recast, and batched
WAL bookkeeping are pure wall-clock optimisations: the simulated numbers
of the figure benchmarks must stay **bit-identical** to the values
captured on the pre-rewrite engine (recorded below).  Any drift here
means an engine change leaked into simulated behaviour.
"""

import hashlib
import json

from repro.bench import make_cluster, run_stream, scaled_config
from repro.workloads import FixedOpStream, bootstrap, single_large_directory

# Captured from the seed (pre-LSM) engine at PR-3 head; see EXPERIMENTS.md.
PINNED = {
    "ops_completed": 250,
    "sim_elapsed_us": 289.60000000000014,
    "throughput_kops": 863.2596685082868,
    "mean_latency_us": 17.87899999999997,
    "n_samples": 250,
    "samples_sha256": "cad6de2dbd61d5367f0a8b9a1e6286cfa627d14a8f5c072d31caaa4946e1cfba",
}


def test_fig11_small_point_bit_identical_to_seed_engine():
    cluster = make_cluster("SwitchFS", scaled_config(num_servers=4, seed=17))
    pop = bootstrap(cluster, single_large_directory(400), warm_clients=[0])
    stream = FixedOpStream("create", pop, seed=17, dir_choice="single")
    result = run_stream(cluster, stream, total_ops=250, inflight=16)
    samples = result.latency.samples("all")
    assert result.ops_completed == PINNED["ops_completed"]
    assert result.sim_elapsed_us == PINNED["sim_elapsed_us"]
    assert result.throughput_kops == PINNED["throughput_kops"]
    assert result.mean_latency_us == PINNED["mean_latency_us"]
    assert len(samples) == PINNED["n_samples"]
    digest = hashlib.sha256(json.dumps(samples).encode()).hexdigest()
    assert digest == PINNED["samples_sha256"]
