"""Unit tests for the benchmark harness and reporters."""

import pytest

from repro.bench import (
    RunResult,
    Series,
    find_peak_throughput,
    format_table,
    make_cluster,
    run_stream,
    scaled_config,
)
from repro.core import FSConfig, SwitchFSCluster
from repro.sim import LatencyRecorder
from repro.workloads import FixedOpStream, bootstrap, multiple_directories


def small_run(inflight=8, total=60, warmup=0):
    cluster = SwitchFSCluster(FSConfig(num_servers=2, cores_per_server=2, seed=33))
    pop = bootstrap(cluster, multiple_directories(4, 3), warm_clients=[0])
    stream = FixedOpStream("stat", pop, seed=33)
    return run_stream(cluster, stream, total_ops=total, inflight=inflight,
                      warmup_ops=warmup)


class TestRunStream:
    def test_counts_and_throughput(self):
        result = small_run()
        assert result.ops_completed == 60
        assert result.throughput_kops > 0
        assert result.mean_latency_us > 0
        assert result.p99_latency_us() >= result.latency.p(50)

    def test_warmup_excluded(self):
        result = small_run(total=60, warmup=20)
        assert result.ops_completed == 40
        assert result.latency.count() == 40

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            small_run(total=10, warmup=10)

    def test_multiple_clients(self):
        cluster = SwitchFSCluster(FSConfig(num_servers=2, cores_per_server=2, seed=34))
        pop = bootstrap(cluster, multiple_directories(4, 3), warm_clients=[0, 1])
        stream = FixedOpStream("stat", pop, seed=34)
        result = run_stream(cluster, stream, total_ops=40, inflight=8, num_clients=2)
        assert result.ops_completed == 40
        assert len(cluster._clients) == 2


class TestFindPeak:
    def test_returns_best_level(self):
        calls = []

        def make_run(inflight):
            calls.append(inflight)
            latency = LatencyRecorder()
            latency.record(1.0)
            tput = {8: 100, 16: 190, 32: 200, 64: 201}[inflight]
            return RunResult(
                ops_completed=tput, sim_elapsed_us=1e6, wall_seconds=0.0,
                latency=latency, inflight=inflight,
            )

        best = find_peak_throughput(make_run, inflight_levels=(8, 16, 32, 64))
        # 32 -> 64 improves by <2%: stops and keeps the higher of the two.
        assert best.ops_completed == 201
        assert calls == [8, 16, 32, 64]


class TestSweep:
    def test_make_cluster_all_systems(self):
        for system in ("SwitchFS", "InfiniFS", "CFS-KV", "IndexFS", "Ceph"):
            cluster = make_cluster(system, scaled_config(num_servers=2))
            assert cluster.client(0) is not None

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            make_cluster("ZFS", scaled_config())


class TestReporters:
    def test_format_table_alignment(self):
        text = format_table("T", ["a", "bb"], [[1, 22.5], ["xx", 3]])
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert len({len(l) for l in lines[1:]}) <= 2  # consistent widths

    def test_series_table(self):
        s = Series("t", "x", "y")
        s.add("l1", 1, 10)
        s.add("l2", 1, 20)
        s.add("l1", 2, 11)
        headers, rows = s.as_table()
        assert headers == ["x", "l1", "l2"]
        assert rows == [[1, 10, 20], [2, 11, "-"]]
