"""Configuration presets."""

from repro.bench import bench_scale, paper_scale
from repro.bench.presets import (
    PAPER_INFLIGHT,
    PAPER_MULTI_DIRS,
    PAPER_SINGLE_DIR_FILES,
)
from repro.switchfab import StaleSetConfig


def test_bench_scale_defaults():
    cfg = bench_scale()
    assert cfg.num_servers == 8
    assert cfg.cores_per_server == 4


def test_paper_scale_matches_table4():
    cfg = paper_scale()
    assert cfg.num_servers == 16           # two per dual-socket node
    assert cfg.stale_stages == 10          # ten pipeline stages
    assert cfg.stale_index_bits == 17      # 131,072 registers each
    geometry = StaleSetConfig(cfg.stale_stages, cfg.stale_index_bits)
    assert geometry.capacity == 1_310_720  # the paper's stale-set capacity
    assert cfg.num_clients == 3


def test_paper_constants():
    assert PAPER_INFLIGHT == 256
    assert PAPER_SINGLE_DIR_FILES == 10_000_000
    assert PAPER_MULTI_DIRS == 1024


def test_overrides_pass_through():
    cfg = paper_scale(recast=False)
    assert not cfg.recast
    assert cfg.stale_index_bits == 17
