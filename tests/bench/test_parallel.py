"""Tests for the parallel-partition DES mode (repro.bench.parallel).

The mode's contract has three tiers (DESIGN.md §14): bit-identical
across worker counts, state-equivalent to the monolithic serial run,
stats-equivalent latency.  These tests pin all three plus the safety
machinery (partition guard, lookahead windows) and run the analysis
layer (SimTracer; the pool sanitizer is session-wide via conftest) over
a partitioned run.
"""

import os

import pytest

from repro.bench.parallel import (
    PartitionSpec,
    bench_parallel,
    merge_partitions,
    run_parallel,
    run_partition,
    run_serial_reference,
)
from repro.bench.sweep import SweepPool
from repro.sim import (
    AllOf,
    PartitionGuard,
    PartitionViolation,
    Simulator,
    WindowedRunner,
    lookahead_bound_us,
    partition_of_dir,
)

TINY = PartitionSpec(total_ops=600, dirs=8, num_servers=2,
                     cores_per_server=2, inflight=8)


def merged_fingerprint(result):
    """Byte-comparable projection of a merged PartitionResult."""
    return (
        result.ops_completed,
        result.sim_elapsed_us,
        result.op_counts,
        result.namespace,
        result.latency_samples,
    )


class TestPartitionMap:
    def test_stable_and_in_range(self):
        for path in ("/d0", "/d1", "/deep/nested"):
            for n in (1, 2, 4, 7):
                p = partition_of_dir(path, n)
                assert p == partition_of_dir(path, n)
                assert 0 <= p < n

    def test_nparts_one_degenerates(self):
        assert partition_of_dir("/anything", 1) == 0

    def test_covers_all_partitions(self):
        dirs = [f"/d{i}" for i in range(64)]
        assert {partition_of_dir(d, 4) for d in dirs} == {0, 1, 2, 3}


class TestWindowedRunner:
    def _workload(self, sim, log):
        def ticker(period, count, tag):
            for i in range(count):
                yield sim.timeout(period)
                log.append((sim.now, tag, i))

        def join(procs):
            yield AllOf(sim, procs)

        procs = [
            sim.spawn(ticker(3.0, 40, "a"), name="a"),
            sim.spawn(ticker(7.0, 20, "b"), name="b"),
        ]
        return sim.spawn(join(procs), name="join")

    def test_bit_identical_to_plain_run(self):
        """Windowing never reorders events: same completion log either way."""
        plain_sim = Simulator()
        plain_log = []
        plain_sim.run_process(self._workload(plain_sim, plain_log))

        win_sim = Simulator()
        win_log = []
        runner = WindowedRunner(win_sim, window_us=0.8)
        runner.run_process(self._workload(win_sim, win_log))

        assert win_log == plain_log
        assert runner.windows > 1

    def test_window_hook_sees_monotonic_time(self):
        sim = Simulator()
        times = []
        runner = WindowedRunner(sim, window_us=2.0, on_window=times.append)
        runner.run_process(self._workload(sim, []))
        assert times == sorted(times)
        assert len(times) == runner.windows

    def test_idle_gaps_are_jumped(self):
        """Window count tracks busy time, not total virtual span."""
        sim = Simulator()

        def sparse():
            yield sim.timeout(10_000.0)
            yield sim.timeout(10_000.0)

        runner = WindowedRunner(sim, window_us=1.0)
        runner.run_process(sim.spawn(sparse(), name="sparse"))
        assert runner.windows <= 4  # not ~20k windows

    def test_rejects_nonpositive_window(self):
        with pytest.raises(Exception):
            WindowedRunner(Simulator(), window_us=0.0)


class TestPartitionGuard:
    def _thunk(self, d):
        def t(fs):
            yield
        t.dir_path = d
        t.op_name = "create"
        return t

    def test_admits_own_partition(self):
        d = "/d0"
        guard = PartitionGuard(4, partition_of_dir(d, 4))
        guard.admit(self._thunk(d))
        assert guard.admitted == 1

    def test_raises_on_foreign_dir(self):
        d = "/d0"
        wrong = (partition_of_dir(d, 4) + 1) % 4
        with pytest.raises(PartitionViolation):
            PartitionGuard(4, wrong).admit(self._thunk(d))

    def test_raises_on_unstamped_thunk(self):
        def bare(fs):
            yield
        with pytest.raises(PartitionViolation):
            PartitionGuard(2, 0).admit(bare)

    def test_lookahead_bound_is_min_message_latency(self):
        from repro.core import FSConfig
        perf = FSConfig().perf
        bound = lookahead_bound_us(perf)
        assert 0 < bound <= perf.link_latency_us + perf.switch_latency_us


class TestEquivalenceOracle:
    """The acceptance oracle: partitioned == serial in state, not in stats."""

    def test_state_equivalent_to_serial(self):
        serial = run_serial_reference(TINY)
        parallel = run_parallel(TINY, workers=2,
                                pool=SweepPool(serial=True))
        assert parallel.namespace == serial.namespace
        assert parallel.op_counts == serial.op_counts
        assert parallel.ops_completed == serial.ops_completed
        # Stats tiers: latency is only statistically comparable.
        assert parallel.latency_samples != []

    def test_bit_identical_across_worker_maps(self):
        """Pool vs in-process execution merges to identical bytes."""
        serial_pool = run_parallel(TINY, workers=2,
                                   pool=SweepPool(serial=True))
        process_pool = run_parallel(TINY, workers=2,
                                    pool=SweepPool(max_workers=2, serial=False))
        assert (merged_fingerprint(process_pool)
                == merged_fingerprint(serial_pool))

    def test_partition_results_deterministic(self):
        spec = PartitionSpec(total_ops=300, dirs=8, num_servers=2,
                             cores_per_server=2, inflight=4,
                             nparts=2, index=1)
        a, b = run_partition(spec), run_partition(spec)
        assert a.ops_completed == b.ops_completed
        assert a.sim_elapsed_us == b.sim_elapsed_us
        assert a.latency_samples == b.latency_samples
        assert a.namespace == b.namespace
        assert a.windows == b.windows

    def test_every_op_executes_exactly_once(self):
        parts = [
            run_partition(PartitionSpec(
                total_ops=300, dirs=8, num_servers=2, cores_per_server=2,
                inflight=4, nparts=3, index=k))
            for k in range(3)
        ]
        merged = merge_partitions(parts)
        assert merged.ops_completed == 300
        assert merged.op_counts == {"create": 300}

    def test_bench_parallel_reports_equivalent(self):
        results = bench_parallel(scale="tiny", workers=2)
        entry = results["parallel_partition_create"]
        assert entry["equivalent"] is True
        assert entry["workers"] == 2
        assert entry["lookahead_windows"] > 0

    @pytest.mark.skipif((os.cpu_count() or 1) < 4,
                        reason="wall-clock speedup needs real cores")
    def test_parallel_beats_serial_wall_clock(self):
        """On a multi-core host the partitioned run must win outright."""
        spec = PartitionSpec(total_ops=20_000, dirs=32, num_servers=8,
                             inflight=64)
        serial = run_serial_reference(spec)
        parallel = run_parallel(spec, workers=4)
        assert parallel.wall_seconds < serial.wall_seconds


class TestAnalysisOnParallelRun:
    def test_tracer_and_sanitizer_clean_on_partitioned_run(self):
        """SimTracer (and the session-wide pool sanitizer) pass in
        parallel mode: no lock-order cycles, no races."""
        from repro.analysis import SimTracer, instrument_server
        from repro.analysis.detect import lock_order_cycles, race_findings

        holder = {}

        def instrument(cluster):
            tracer = SimTracer(capture_stacks=False)
            tracer.attach(cluster.sim)
            for server in cluster.servers:
                instrument_server(tracer, server)
            holder["tracer"] = tracer

        spec = PartitionSpec(total_ops=300, dirs=8, num_servers=2,
                             cores_per_server=2, inflight=4,
                             nparts=2, index=0)
        result = run_partition(spec, instrument=instrument)
        tracer = holder["tracer"]
        tracer.detach()
        assert result.ops_completed > 0
        assert lock_order_cycles(tracer) == []
        assert race_findings(tracer) == []
