"""Tests for the CI perf-regression gate (repro.bench.perf.gate_regressions)."""

import json

from repro.bench.perf import (
    SCHEMA_VERSION,
    SUITE_RATE_KEYS,
    gate_fanin_wall_growth,
    gate_regressions,
)


def write_trajectory(path, suite, entries):
    data = {"schema": SCHEMA_VERSION, "suite": suite, "history": entries}
    path.write_text(json.dumps(data))


def entry(label, rate, scale="tiny", rate_key="events_per_sec",
          workload="w1"):
    return {
        "label": label,
        "scale": scale,
        "results": {workload: {rate_key: rate, "wall_seconds": 1.0}},
    }


class TestGateRegressions:
    def test_within_tolerance_passes(self, tmp_path):
        p = tmp_path / "BENCH_kernel.json"
        write_trajectory(p, "kernel",
                         [entry("base", 1000.0), entry("new", 800.0)])
        assert gate_regressions(str(p), "kernel", "base", "new",
                                max_regression=0.25) == []

    def test_regression_beyond_tolerance_fails(self, tmp_path):
        p = tmp_path / "BENCH_kernel.json"
        write_trajectory(p, "kernel",
                         [entry("base", 1000.0), entry("new", 700.0)])
        failures = gate_regressions(str(p), "kernel", "base", "new",
                                    max_regression=0.25)
        assert len(failures) == 1
        assert "kernel/w1" in failures[0]

    def test_improvement_passes(self, tmp_path):
        p = tmp_path / "BENCH_kernel.json"
        write_trajectory(p, "kernel",
                         [entry("base", 1000.0), entry("new", 2000.0)])
        assert gate_regressions(str(p), "kernel", "base", "new") == []

    def test_missing_baseline_skips(self, tmp_path):
        p = tmp_path / "BENCH_kernel.json"
        write_trajectory(p, "kernel", [entry("new", 1000.0)])
        assert gate_regressions(str(p), "kernel", "base", "new") is None

    def test_missing_file_skips(self, tmp_path):
        missing = tmp_path / "BENCH_kernel.json"
        assert gate_regressions(str(missing), "kernel", "base", "new") is None

    def test_scale_mismatch_skips(self, tmp_path):
        p = tmp_path / "BENCH_kernel.json"
        write_trajectory(p, "kernel",
                         [entry("base", 1000.0, scale="full"),
                          entry("new", 100.0, scale="tiny")])
        assert gate_regressions(str(p), "kernel", "base", "new") is None

    def test_new_workload_without_baseline_is_ignored(self, tmp_path):
        p = tmp_path / "BENCH_e2e.json"
        base = entry("base", 1000.0, rate_key="wall_ops_per_sec")
        new = entry("new", 900.0, rate_key="wall_ops_per_sec")
        new["results"]["brand_new_point"] = {"wall_ops_per_sec": 1.0}
        write_trajectory(p, "e2e", [base, new])
        assert gate_regressions(str(p), "e2e", "base", "new") == []

    def test_every_suite_has_a_rate_key(self):
        assert set(SUITE_RATE_KEYS) == {"kernel", "rpc", "store", "e2e"}

    def test_committed_baselines_exist_at_tiny_scale(self):
        """The CI gate only bites if these stay committed."""
        import os
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        for suite in ("kernel", "rpc", "store", "e2e"):
            path = os.path.join(root, f"BENCH_{suite}.json")
            with open(path) as f:
                history = json.load(f)["history"]
            assert any(
                e["label"] == "ci-baseline" and e["scale"] == "tiny"
                for e in history
            ), f"BENCH_{suite}.json lost its committed ci-baseline entry"


def fanin_entry(label, small_wall, large_wall, scale="tiny"):
    return {
        "label": label,
        "scale": scale,
        "results": {
            "fanin_10k_users": {"wall_seconds": small_wall,
                                "wall_ops_per_sec": 1000.0},
            "fanin_100k_users": {"wall_seconds": large_wall,
                                 "wall_ops_per_sec": 1000.0},
        },
    }


class TestGateFaninWallGrowth:
    def test_flat_wall_passes(self, tmp_path):
        p = tmp_path / "BENCH_e2e.json"
        write_trajectory(p, "e2e", [fanin_entry("new", 0.10, 0.12)])
        assert gate_fanin_wall_growth(str(p), "new") == []

    def test_wall_growth_beyond_limit_fails(self, tmp_path):
        p = tmp_path / "BENCH_e2e.json"
        write_trajectory(p, "e2e", [fanin_entry("new", 0.10, 0.20)])
        failures = gate_fanin_wall_growth(str(p), "new", max_growth=1.5)
        assert len(failures) == 1
        assert "fanin_100k_users" in failures[0]
        assert "O(load)" in failures[0]

    def test_boundary_ratio_passes(self, tmp_path):
        p = tmp_path / "BENCH_e2e.json"
        write_trajectory(p, "e2e", [fanin_entry("new", 0.10, 0.15)])
        assert gate_fanin_wall_growth(str(p), "new", max_growth=1.5) == []

    def test_missing_label_skips(self, tmp_path):
        p = tmp_path / "BENCH_e2e.json"
        write_trajectory(p, "e2e", [fanin_entry("other", 0.1, 0.1)])
        assert gate_fanin_wall_growth(str(p), "new") is None

    def test_missing_arm_skips(self, tmp_path):
        p = tmp_path / "BENCH_e2e.json"
        e = fanin_entry("new", 0.1, 0.1)
        del e["results"]["fanin_100k_users"]
        write_trajectory(p, "e2e", [e])
        assert gate_fanin_wall_growth(str(p), "new") is None

    def test_missing_file_skips(self, tmp_path):
        assert gate_fanin_wall_growth(str(tmp_path / "nope.json"), "new") is None
