"""Population bootstrap and op-stream generators."""

import pytest

from repro.core import FSConfig, SwitchFSCluster
from repro.workloads import (
    BurstStream,
    CNNTrainingTrace,
    DATA_CENTER_SERVICES_MIX,
    FixedOpStream,
    MixStream,
    Population,
    ThumbnailTrace,
    bootstrap,
    multiple_directories,
    single_large_directory,
    trace_population,
)


def _thunk_path(thunk):
    """Extract the target path captured in an op thunk's closure."""
    return next(
        c.cell_contents
        for c in thunk.__closure__
        if isinstance(c.cell_contents, str)
    )


def small_cluster():
    return SwitchFSCluster(FSConfig(num_servers=4, cores_per_server=2, seed=4))


class TestBootstrap:
    def test_single_large_directory_visible(self):
        cluster = small_cluster()
        pop = bootstrap(cluster, single_large_directory(30), warm_clients=[0])
        fs = cluster.client(0)
        info = cluster.run_op(fs.statdir("/shared"))
        assert info["entry_count"] == 30
        listing = cluster.run_op(fs.readdir("/shared"))
        assert len(listing["entries"]) == 30
        # Pre-populated files are stat-able.
        assert cluster.run_op(fs.stat("/shared/pre7"))["name"] == "pre7"

    def test_multiple_directories_layout(self):
        cluster = small_cluster()
        pop = bootstrap(cluster, multiple_directories(16, 5), warm_clients=[0])
        fs = cluster.client(0)
        for i in (0, 7, 15):
            assert cluster.run_op(fs.statdir(f"/d{i}"))["entry_count"] == 5

    def test_warm_cache_avoids_lookups(self):
        cluster = small_cluster()
        bootstrap(cluster, multiple_directories(4, 2), warm_clients=[0])
        fs = cluster.client(0)
        cluster.run_op(fs.stat("/d0/pre0"))
        assert fs.counters.get("cache_misses") == 0

    def test_ops_on_bootstrapped_namespace(self):
        """The fast-installed state must behave exactly like protocol-built
        state for subsequent operations."""
        cluster = small_cluster()
        bootstrap(cluster, single_large_directory(10), warm_clients=[0])
        fs = cluster.client(0)
        cluster.run_op(fs.create("/shared/newfile"))
        cluster.run_op(fs.delete("/shared/pre0"))
        info = cluster.run_op(fs.statdir("/shared"))
        assert info["entry_count"] == 10  # +1 -1
        listing = cluster.run_op(fs.readdir("/shared"))
        assert "newfile" in listing["entries"]
        assert "pre0" not in listing["entries"]


class TestFixedOpStream:
    def test_create_names_unique(self):
        pop = multiple_directories(4, 3)
        stream = FixedOpStream("create", pop, seed=1)
        # Collect the paths each thunk would target by inspecting closure.
        paths = set()
        for _ in range(50):
            thunk = stream.take()
            paths.add(_thunk_path(thunk))
        assert len(paths) == 50

    def test_single_dir_choice(self):
        pop = single_large_directory(10)
        stream = FixedOpStream("stat", pop, seed=1, dir_choice="single")
        for _ in range(10):
            stream.take()
        assert stream.issued == 10

    def test_zipf_choice_skews(self):
        pop = multiple_directories(64, 2)
        stream = FixedOpStream("create", pop, seed=1, dir_choice="zipf", zipf_theta=1.2)
        hits = {}
        for _ in range(400):
            thunk = stream.take()
            d = _thunk_path(thunk).rsplit("/", 1)[0]
            hits[d] = hits.get(d, 0) + 1
        top = max(hits.values())
        assert top > 400 / 64 * 4  # far above uniform share

    def test_unknown_op_rejected(self):
        stream = FixedOpStream("create", single_large_directory(1))
        stream.op = "bogus"
        with pytest.raises(ValueError):
            stream.next_thunk()

    def test_runs_against_cluster(self):
        cluster = small_cluster()
        pop = bootstrap(cluster, multiple_directories(4, 3), warm_clients=[0])
        fs = cluster.client(0)
        stream = FixedOpStream("create", pop, seed=2)
        for _ in range(12):
            cluster.run_op(stream.take()(fs))
        stream = FixedOpStream("stat", pop, seed=3)
        for _ in range(12):
            assert cluster.run_op(stream.take()(fs))["perm"] in (0o644, 420)


class TestMixStream:
    def test_mix_stream_runs_clean(self):
        cluster = small_cluster()
        pop = bootstrap(cluster, multiple_directories(8, 4), warm_clients=[0])
        fs = cluster.client(0)
        stream = MixStream(DATA_CENTER_SERVICES_MIX, pop, seed=5, data_enabled=False)
        for _ in range(60):
            cluster.run_op(stream.take()(fs))
        assert stream.issued == 60

    def test_8020_skew(self):
        pop = multiple_directories(20, 1)
        stream = MixStream(DATA_CENTER_SERVICES_MIX, pop, seed=6)
        hot, total = 0, 400
        for _ in range(total):
            d = stream._pick_dir()
            if int(d[2:]) < 4:  # hottest 20% of 20 dirs
                hot += 1
        assert hot / total > 0.7


class TestBurstStream:
    def test_burst_groups_consecutive_ops(self):
        pop = multiple_directories(16, 1)
        stream = BurstStream(pop, burst_size=10, seed=1)
        dirs = []
        for _ in range(40):
            thunk = stream.take()
            dirs.append(_thunk_path(thunk).rsplit("/", 1)[0])
        # Within each group of 10, the directory is constant.
        for g in range(4):
            group = dirs[g * 10 : (g + 1) * 10]
            assert len(set(group)) == 1

    def test_invalid_burst_size(self):
        with pytest.raises(ValueError):
            BurstStream(multiple_directories(2, 1), burst_size=0)

    def test_runs_against_cluster(self):
        cluster = small_cluster()
        pop = bootstrap(cluster, multiple_directories(4, 1), warm_clients=[0])
        fs = cluster.client(0)
        stream = BurstStream(pop, burst_size=5, seed=2)
        for _ in range(20):
            cluster.run_op(stream.take()(fs))


class TestTraces:
    def test_cnn_trace_phases(self):
        pop = trace_population(4, 3)
        trace = CNNTrainingTrace(pop, epochs=1, data_enabled=False)
        # download (2 ops/file) + epoch (3 ops/file) + removal (1 op/file)
        assert len(trace) == 12 * 6

    def test_cnn_trace_lifecycle_on_cluster(self):
        cluster = small_cluster()
        pop = bootstrap(cluster, trace_population(3, 2), warm_clients=[0])
        fs = cluster.client(0)
        trace = CNNTrainingTrace(pop, epochs=1, data_enabled=False)
        for _ in range(len(trace)):
            cluster.run_op(trace.take()(fs))
        # After removal phase, all dl- files are gone again.
        listing = cluster.run_op(fs.readdir("/class0"))
        assert all(not e.startswith("dl-") for e in listing["entries"])

    def test_thumbnail_trace_creates_thumbs(self):
        cluster = small_cluster()
        pop = bootstrap(cluster, trace_population(2, 2), warm_clients=[0])
        fs = cluster.client(0)
        trace = ThumbnailTrace(pop, data_enabled=False)
        for _ in range(len(trace)):
            cluster.run_op(trace.take()(fs))
        listing = cluster.run_op(fs.readdir("/class1"))
        assert any(e.startswith("thumb-") for e in listing["entries"])

    def test_data_latency_charged(self):
        cluster = small_cluster()
        pop = bootstrap(cluster, trace_population(1, 1), warm_clients=[0])
        fs = cluster.client(0)
        with_data = CNNTrainingTrace(pop, data_latency_us=500.0, data_enabled=True)
        t0 = cluster.sim.now
        for _ in range(2):  # create + write of the first file
            cluster.run_op(with_data.take()(fs))
        assert cluster.sim.now - t0 >= 500.0
