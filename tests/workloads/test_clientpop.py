"""Open-loop client-population engine (DESIGN.md §16).

Covers the three tentpole invariants: seeded determinism (bit-identical
arrival sequences, latency buckets, and user-table columns), the
one-draw-per-arrival lockstep property (arrival *times* independent of
the population size at a fixed offered load), and the K=1 equivalence
oracle against the legacy closed-loop harness.
"""

import pytest

from repro.bench import run_stream
from repro.core import FSConfig, SwitchFSCluster
from repro.sim import LatencyRecorder
from repro.workloads import (
    FixedOpStream,
    PopulationClient,
    UserTable,
    bootstrap,
    run_fanin,
    single_large_directory,
)


def _cluster(seed=3, num_servers=2):
    return SwitchFSCluster(FSConfig(num_servers=num_servers, seed=seed))


def _drive_population(users, ops=150, load=100_000.0, seed=7):
    """Drive one PopulationClient directly; returns it for inspection."""
    cluster = _cluster()
    ns = bootstrap(cluster, single_large_directory(16), warm_clients=[0])
    stream = FixedOpStream("stat", ns, seed=5, dir_choice="single")
    pc = PopulationClient(
        "pop0",
        cluster.client(0),
        stream,
        UserTable(users),
        load,
        seed=seed,
        latency=LatencyRecorder(),
        record_arrivals=True,
    )
    sim = cluster.sim
    sim.run_process(sim.spawn(pc.drive(ops)))
    return pc


def _fanin_once(seed=7):
    cluster = _cluster()
    ns = bootstrap(cluster, single_large_directory(16), warm_clients=[0, 1])
    result = run_fanin(
        cluster,
        lambda a: FixedOpStream("stat", ns, seed=5 + a, dir_choice="single"),
        users=1_000,
        offered_load_ops=120_000.0,
        total_ops=300,
        aggregates=2,
        seed=seed,
    )
    return result


def _namespace(cluster, fs, dirs):
    """Logical namespace snapshot: per-directory listing + entry count."""
    snap = {}
    for d in dirs:
        listing = cluster.run_op(fs.readdir(d))
        info = cluster.run_op(fs.statdir(d))
        snap[d] = (sorted(listing["entries"]), info["entry_count"])
    return snap


class TestUserTable:
    def test_columns_sized_and_zeroed(self):
        t = UserTable(100)
        assert len(t.ops_done) == len(t.lat_sum) == len(t.epoch_seen) == 100
        assert not any(t.ops_done) and not any(t.lat_sum)
        assert t.active_users() == 0 and t.top_user_share() == 0.0

    def test_rank_zero_is_hottest(self):
        t = UserTable(50, theta=0.99)
        assert t.weights[0] == max(t.weights)
        assert list(t.weights) == sorted(t.weights, reverse=True)

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            UserTable(0)


class TestDeterminism:
    def test_same_seed_bit_identical_run(self):
        r1, r2 = _fanin_once(), _fanin_once()
        assert r1.sim_elapsed_us == r2.sim_elapsed_us
        assert list(r1.latency.bucket("pop0")) == list(r2.latency.bucket("pop0"))
        assert list(r1.latency.bucket("pop1")) == list(r2.latency.bucket("pop1"))
        assert list(r1.latency.bucket("all")) == list(r2.latency.bucket("all"))
        assert r1.populations == r2.populations

    def test_same_seed_bit_identical_user_columns(self):
        p1, p2 = _drive_population(2_000), _drive_population(2_000)
        assert p1.users.ops_done.tobytes() == p2.users.ops_done.tobytes()
        assert p1.users.lat_sum.tobytes() == p2.users.lat_sum.tobytes()
        assert p1.arrival_log == p2.arrival_log

    def test_arrival_times_independent_of_population_size(self):
        # One arrival consumes exactly two uniforms (gap + user) through
        # the alias table, so at a fixed offered load the arrival *time*
        # sequence is bit-identical whether the aggregate carries 10
        # users or 10,000 — only the sampled uids differ.
        small = _drive_population(10)
        large = _drive_population(10_000)
        assert [t for t, _ in small.arrival_log] == [
            t for t, _ in large.arrival_log
        ]
        assert any(
            u1 != u2
            for (_, u1), (_, u2) in zip(small.arrival_log, large.arrival_log)
        )

    def test_different_seeds_diverge(self):
        a, b = _drive_population(100, seed=1), _drive_population(100, seed=2)
        assert a.arrival_log != b.arrival_log


class TestEquivalenceOracle:
    def test_k1_population_matches_legacy_closed_loop(self):
        # A single-user open-loop population and the legacy one-worker
        # closed loop consume the same seeded op stream, so both runs
        # must leave the namespace in the same end state.
        total = 60

        legacy_cluster = _cluster(seed=9)
        legacy_ns = bootstrap(
            legacy_cluster, single_large_directory(8), warm_clients=[0]
        )
        legacy_stream = FixedOpStream(
            "create", legacy_ns, seed=5, dir_choice="single"
        )
        run_stream(legacy_cluster, legacy_stream, total_ops=total, inflight=1)
        legacy_cluster.settle()

        fanin_cluster = _cluster(seed=9)
        fanin_ns = bootstrap(
            fanin_cluster, single_large_directory(8), warm_clients=[0]
        )
        run_fanin(
            fanin_cluster,
            lambda a: FixedOpStream("create", fanin_ns, seed=5, dir_choice="single"),
            users=1,
            offered_load_ops=50_000.0,
            total_ops=total,
            aggregates=1,
        )
        fanin_cluster.settle()

        dirs = legacy_ns.dir_paths
        assert _namespace(
            legacy_cluster, legacy_cluster.client(0), dirs
        ) == _namespace(fanin_cluster, fanin_cluster.client(0), dirs)


class TestScaleUpMidRun:
    def test_epoch_catchups_counted_across_join(self):
        cluster = _cluster(seed=4)
        ns = bootstrap(cluster, single_large_directory(24), warm_clients=[0])
        sim = cluster.sim
        events = {}

        def controller():
            yield sim.timeout(1_000.0)
            events["up"] = yield from cluster.scale_up_gen()

        result = run_fanin(
            cluster,
            lambda a: FixedOpStream("stat", ns, seed=5, dir_choice="single"),
            users=500,
            offered_load_ops=100_000.0,
            total_ops=400,
            aggregates=1,
            seed=7,
            extra_procs=[controller()],
        )
        assert result.ops_completed == 400
        assert events["up"]["epoch"] >= 1
        # Users completing their first op after the join roll their
        # logical cache epoch forward exactly once each.
        catchups = sum(p["epoch_catchups"] for p in result.populations.values())
        assert 0 < catchups <= 500


class TestRunFanin:
    def test_population_summaries_partition_the_run(self):
        result = _fanin_once()
        pops = result.populations
        assert set(pops) == {"pop0", "pop1"}
        assert sum(p["users"] for p in pops.values()) == 1_000
        assert sum(p["ops_completed"] for p in pops.values()) == 300
        total_load = sum(p["offered_load_ops"] for p in pops.values())
        assert total_load == pytest.approx(120_000.0)
        for p in pops.values():
            assert p["peak_inflight"] >= 1
            assert 0 < p["active_users"] <= p["users"]
            assert 0.0 < p["top_user_share"] <= 1.0
            assert p["p99_latency_us"] >= p["p50_latency_us"] > 0

    def test_validation(self):
        cluster = _cluster()
        ns = bootstrap(cluster, single_large_directory(8), warm_clients=[0])
        make = lambda a: FixedOpStream("stat", ns, seed=5, dir_choice="single")
        with pytest.raises(ValueError):
            run_fanin(cluster, make, users=10, offered_load_ops=1e5,
                      total_ops=10, aggregates=0)
        with pytest.raises(ValueError):
            run_fanin(cluster, make, users=1, offered_load_ops=1e5,
                      total_ops=10, aggregates=2)
        with pytest.raises(ValueError):
            run_fanin(cluster, make, users=10, offered_load_ops=1e5,
                      total_ops=5, warmup_ops=5)
        with pytest.raises(ValueError):
            PopulationClient(
                "p", cluster.client(0), make(0), UserTable(1), 0.0,
                seed=1, latency=LatencyRecorder(),
            )

    def test_warmup_excludes_early_samples(self):
        cluster = _cluster()
        ns = bootstrap(cluster, single_large_directory(16), warm_clients=[0])
        result = run_fanin(
            cluster,
            lambda a: FixedOpStream("stat", ns, seed=5, dir_choice="single"),
            users=100,
            offered_load_ops=100_000.0,
            total_ops=200,
            warmup_ops=50,
        )
        assert result.ops_completed == 150
        assert len(result.latency.bucket("all")) == 150
