"""Workload op mixes must match the paper's published ratios."""

import pytest

from repro.workloads import (
    CNN_TRAINING_MIX,
    DATA_CENTER_SERVICES_MIX,
    OpMix,
    PANGU_METADATA_MIX,
    THUMBNAIL_MIX,
)

ALL_MIXES = [
    PANGU_METADATA_MIX,
    DATA_CENTER_SERVICES_MIX,
    CNN_TRAINING_MIX,
    THUMBNAIL_MIX,
]


@pytest.mark.parametrize("mix", ALL_MIXES, ids=lambda m: m.name)
def test_mix_normalised(mix):
    assert 0.99 <= sum(mix.probs) <= 1.01
    assert all(w >= 0 for w in mix.probs)


def test_invalid_mix_rejected():
    with pytest.raises(ValueError):
        OpMix(name="bad", weights=(("create", 0.5),))


class TestPanguTable1:
    """Table 1: 30.76% directory updates, 4.19% directory reads."""

    def test_directory_update_ratio(self):
        d = PANGU_METADATA_MIX.as_dict()
        updates = d["create"] + d["delete"] + d["mkdir"] + d["rmdir"] + d["rename"]
        assert abs(updates - 0.3076) < 0.002

    def test_directory_read_ratio(self):
        d = PANGU_METADATA_MIX.as_dict()
        reads = d["statdir"] + d["readdir"]
        assert abs(reads - 0.0419) < 0.001

    def test_pigeonhole_bound(self):
        """The paper's motivating arithmetic: >86% of directory updates are
        not immediately followed by a read of that directory."""
        d = PANGU_METADATA_MIX.as_dict()
        updates = d["create"] + d["delete"] + d["mkdir"] + d["rmdir"] + d["rename"]
        reads = d["statdir"] + d["readdir"]
        assert (updates - reads) / updates > 0.86

    def test_readdir_dominates_reads(self):
        d = PANGU_METADATA_MIX.as_dict()
        assert d["readdir"] / (d["readdir"] + d["statdir"]) > 0.9


class TestTable5:
    def test_dcs_open_close_share(self):
        d = DATA_CENTER_SERVICES_MIX.as_dict()
        assert abs(d["open"] + d["close"] - 0.526) < 0.001

    def test_dcs_rename_share(self):
        assert abs(DATA_CENTER_SERVICES_MIX.as_dict()["rename"] - 0.093) < 0.001

    def test_cnn_metadata_intensive(self):
        """>80% of ops are metadata ops (not read/write) per §6.6."""
        d = CNN_TRAINING_MIX.as_dict()
        data = d.get("read", 0) + d.get("write", 0)
        assert 1 - data > 0.75

    def test_thumbnail_create_share(self):
        assert abs(THUMBNAIL_MIX.as_dict()["create"] - 0.109) < 0.001
