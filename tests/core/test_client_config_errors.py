"""Unit tests: path handling, client cache, config validation, errors."""

import pytest

from repro.core import (
    EEXIST,
    EINVALIDPATH,
    ENOENT,
    FSConfig,
    FSError,
    PerfModel,
    SwitchFSCluster,
    fs_error,
    split_path,
)
from repro.core.invalidation import InvalidationList


class TestSplitPath:
    def test_basic(self):
        assert split_path("/a/b/c") == ("/a/b", "c")

    def test_top_level(self):
        assert split_path("/file") == ("/", "file")

    def test_trailing_slash(self):
        assert split_path("/a/b/") == ("/a", "b")

    def test_root_rejected(self):
        with pytest.raises(ValueError):
            split_path("/")

    def test_relative_rejected(self):
        with pytest.raises(ValueError):
            split_path("a/b")


class TestErrors:
    def test_wire_roundtrip(self):
        err = FSError(EEXIST, "/a/b")
        parsed = fs_error(err.wire_format())
        assert parsed.code == EEXIST
        assert parsed.detail == "/a/b"

    def test_unknown_code_becomes_eio(self):
        parsed = fs_error("rpc create to server-1 timed out")
        assert parsed.code == "EIO"

    def test_known_codes(self):
        for code in (EEXIST, ENOENT, EINVALIDPATH):
            assert fs_error(f"{code}: x").code == code


class TestConfig:
    def test_defaults_valid(self):
        cfg = FSConfig()
        assert cfg.num_servers >= 1
        assert cfg.server_addr(0) == "server-0"

    def test_invalid_servers(self):
        with pytest.raises(ValueError):
            FSConfig(num_servers=0)

    def test_recast_requires_async(self):
        with pytest.raises(ValueError):
            FSConfig(async_updates=False, recast=True)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            FSConfig(stale_backend="fpga")

    def test_server_addr_bounds(self):
        cfg = FSConfig(num_servers=2)
        with pytest.raises(ValueError):
            cfg.server_addr(2)

    def test_perf_scaled(self):
        perf = PerfModel().scaled(3.0, extra_net_us=10.0)
        assert perf.stack_multiplier == 3.0
        assert perf.extra_net_us == 10.0
        # scaled() composes.
        perf2 = perf.scaled(2.0)
        assert perf2.stack_multiplier == 6.0


class TestInvalidationList:
    def test_validate_empty(self):
        inval = InvalidationList()
        assert inval.validate([1, 2, 3])

    def test_insert_and_reject(self):
        inval = InvalidationList()
        inval.insert(2)
        assert not inval.validate([1, 2, 3])
        assert inval.rejections == 1

    def test_snapshot_restore(self):
        a, b = InvalidationList(), InvalidationList()
        a.insert(5)
        b.restore(a.snapshot())
        assert 5 in b
        a.insert(6)  # snapshot is a copy
        assert 6 not in b

    def test_clear(self):
        inval = InvalidationList()
        inval.insert(1)
        inval.clear()
        assert len(inval) == 0


class TestClientCache:
    def make(self):
        cluster = SwitchFSCluster(FSConfig(num_servers=3, cores_per_server=2, seed=8))
        return cluster, cluster.client(0)

    def test_cache_hit_after_first_resolution(self):
        cluster, fs = self.make()
        cluster.run_op(fs.mkdir("/d"))
        cluster.run_op(fs.create("/d/f1"))  # resolves /d, caches it
        misses_after_first = fs.counters.get("cache_misses")
        cluster.run_op(fs.create("/d/f2"))
        assert fs.counters.get("cache_misses") == misses_after_first

    def test_invalidate_path_prunes_subtree(self):
        cluster, fs = self.make()
        cluster.run_op(fs.mkdir("/a"))
        cluster.run_op(fs.mkdir("/a/b"))
        cluster.run_op(fs.create("/a/b/f"))
        assert "/a/b" in fs._cache
        fs.invalidate_path("/a")
        assert "/a" not in fs._cache
        assert "/a/b" not in fs._cache

    def test_lookup_missing_dir_enoent(self):
        cluster, fs = self.make()
        with pytest.raises(FSError) as err:
            cluster.run_op(fs.statdir("/nope"))
        assert err.value.code == ENOENT

    def test_client_isolated_caches(self):
        cluster, fs0 = self.make()
        fs1 = cluster.client(1)
        cluster.run_op(fs0.mkdir("/d"))
        cluster.run_op(fs0.create("/d/f"))
        assert "/d" not in fs1._cache  # separate cache per client
        assert cluster.run_op(fs1.stat("/d/f"))["name"] == "f"
        assert "/d" in fs1._cache
