"""Unit + property tests for change-logs and recast (§4.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ChangeLogEntry, ChangeLogTable, ChangeOp
from repro.core.changelog import ChangeLog


def entry(ts, op=ChangeOp.CREATE, name="f"):
    return ChangeLogEntry(timestamp=ts, op=op, name=name)


class TestChangeLog:
    def test_append_and_len(self):
        log = ChangeLog(dir_id=1, fingerprint=10)
        log.append(entry(1.0), lsn=0, now=1.0)
        log.append(entry(2.0), lsn=1, now=2.0)
        assert len(log) == 2
        assert log.last_append_at == 2.0

    def test_drain_empties(self):
        log = ChangeLog(dir_id=1, fingerprint=10)
        log.append(entry(1.0), lsn=5, now=1.0)
        entries, lsns = log.drain()
        assert len(entries) == 1 and lsns == [5]
        assert len(log) == 0

    def test_recast_consolidates_timestamp(self):
        log = ChangeLog(dir_id=1, fingerprint=10)
        log.append(entry(3.0, name="a"), lsn=0, now=3.0)
        log.append(entry(1.0, ChangeOp.DELETE, name="b"), lsn=1, now=3.5)
        log.append(entry(2.0, name="c"), lsn=2, now=4.0)
        recast = log.recast()
        assert recast.max_timestamp == 3.0
        assert recast.entry_delta == 1  # +1 +1 -1
        assert recast.num_ops == 3

    def test_recast_empty(self):
        log = ChangeLog(dir_id=1, fingerprint=10)
        recast = log.recast()
        assert recast.num_ops == 0 and recast.entry_delta == 0


class TestChangeOp:
    def test_entry_deltas(self):
        assert ChangeOp.CREATE.entry_delta == 1
        assert ChangeOp.MKDIR.entry_delta == 1
        assert ChangeOp.DELETE.entry_delta == -1
        assert ChangeOp.RMDIR.entry_delta == -1

    def test_adds_entry(self):
        assert ChangeOp.CREATE.adds_entry and ChangeOp.MKDIR.adds_entry
        assert not ChangeOp.DELETE.adds_entry


class TestChangeLogTable:
    def test_group_indexing(self):
        table = ChangeLogTable()
        table.append(dir_id=1, fingerprint=99, entry=entry(1.0), lsn=0, now=1.0)
        table.append(dir_id=2, fingerprint=99, entry=entry(2.0), lsn=1, now=2.0)
        table.append(dir_id=3, fingerprint=55, entry=entry(3.0), lsn=2, now=3.0)
        group = table.logs_in_group(99)
        assert sorted(log.dir_id for log in group) == [1, 2]
        assert table.pending_entries() == 3

    def test_drain_group_only_touches_group(self):
        table = ChangeLogTable()
        table.append(1, 99, entry(1.0), 0, 1.0)
        table.append(3, 55, entry(2.0), 1, 2.0)
        drained = table.drain_group(99)
        assert len(drained) == 1 and drained[0][0] == 1
        assert table.pending_entries() == 1

    def test_empty_logs_excluded_from_group(self):
        table = ChangeLogTable()
        log = table.log_for(1, 99)
        assert table.logs_in_group(99) == []
        assert table.non_empty_groups() == []

    def test_drain_all(self):
        table = ChangeLogTable()
        table.append(1, 99, entry(1.0), 0, 1.0)
        table.append(3, 55, entry(2.0), 1, 2.0)
        drained = table.drain_all()
        assert len(drained) == 2
        assert table.pending_entries() == 0

    def test_clear(self):
        table = ChangeLogTable()
        table.append(1, 99, entry(1.0), 0, 1.0)
        table.clear()
        assert table.pending_entries() == 0


# -- property: recast application is equivalent to raw replay ----------------

ops = st.sampled_from(list(ChangeOp))
entry_strategy = st.builds(
    ChangeLogEntry,
    timestamp=st.floats(min_value=0, max_value=1e6),
    op=ops,
    name=st.text(alphabet="abcdef", min_size=1, max_size=4),
    is_dir=st.booleans(),
    perm=st.just(0o644),
)


def apply_raw(entries, initial_mtime=0.0):
    """Reference semantics: replay entries in timestamp order."""
    listing = {}
    mtime = initial_mtime
    for e in sorted(entries, key=lambda e: e.timestamp):
        mtime = max(mtime, e.timestamp)
        if e.op.adds_entry:
            listing[e.name] = e.is_dir
        else:
            listing.pop(e.name, None)
    return listing, mtime


def apply_recast(entries, initial_mtime=0.0):
    """Recast semantics: one consolidated mtime + op-queue application.

    The op queue preserves append order (which is timestamp order per
    origin log and commutative across logs for distinct names).
    """
    log = ChangeLog(dir_id=1, fingerprint=1)
    for i, e in enumerate(sorted(entries, key=lambda e: e.timestamp)):
        log.append(e, lsn=i, now=e.timestamp)
    recast = log.recast()
    listing = {}
    for e in recast.ops:
        if e.op.adds_entry:
            listing[e.name] = e.is_dir
        else:
            listing.pop(e.name, None)
    mtime = max(initial_mtime, recast.max_timestamp) if recast.ops else initial_mtime
    return listing, mtime


@settings(max_examples=300)
@given(entries=st.lists(entry_strategy, max_size=30))
def test_recast_equivalent_to_raw_replay(entries):
    raw_listing, raw_mtime = apply_raw(entries)
    recast_listing, recast_mtime = apply_recast(entries)
    assert recast_listing == raw_listing
    assert recast_mtime == raw_mtime


@settings(max_examples=200)
@given(entries=st.lists(entry_strategy, min_size=1, max_size=30))
def test_recast_delta_matches_op_sum(entries):
    log = ChangeLog(dir_id=1, fingerprint=1)
    for i, e in enumerate(entries):
        log.append(e, lsn=i, now=e.timestamp)
    assert log.recast().entry_delta == sum(e.op.entry_delta for e in entries)
