"""Unit tests for the epoch-versioned membership layer."""

import pytest

from repro.core.config import FSConfig
from repro.core.clustermap import ClusterMap
from repro.core.membership import (
    Membership,
    MembershipView,
    bootstrap_view,
    plan_scale_down,
    plan_scale_up,
)
from repro.core.schema import fingerprint_of, owner_of_dir, owner_of_file


class TestBootstrapIdentity:
    """Epoch 0 must route bit-identically to the pre-membership code."""

    @pytest.mark.parametrize("num_servers", [1, 2, 4, 8])
    def test_dir_routing_matches_modulo(self, num_servers):
        config = FSConfig(num_servers=num_servers)
        view = bootstrap_view(config)
        for pid in range(1, 40):
            for name in ("a", "subdir", "x-9"):
                fp = fingerprint_of(pid, name)
                legacy = config.server_addr(owner_of_dir(fp, num_servers))
                assert view.dir_owner_by_fp(fp) == legacy

    @pytest.mark.parametrize("num_servers", [1, 3, 4])
    def test_file_routing_matches_legacy_hash(self, num_servers):
        config = FSConfig(num_servers=num_servers)
        view = bootstrap_view(config)
        for pid in range(1, 40):
            for name in ("f0", "data.bin", "tmp"):
                legacy = config.server_addr(owner_of_file(pid, name, num_servers))
                assert view.file_owner(pid, name) == legacy

    def test_shard_table_shape(self):
        config = FSConfig(num_servers=4, shards_per_server=8)
        view = bootstrap_view(config)
        assert view.num_shards == 32
        assert view.epoch == 0
        # Every server owns exactly shards_per_server shards at bootstrap.
        for addr in view.servers:
            assert len(view.owned_shards(addr)) == 8


class TestViewInvariants:
    def test_rejects_empty_servers_and_stray_owners(self):
        with pytest.raises(ValueError):
            MembershipView(0, [], ["s-0"])
        with pytest.raises(ValueError):
            MembershipView(0, ["s-0"], ["s-0", "ghost"])

    def test_others_is_precomputed_and_cached(self):
        view = MembershipView(0, ["a", "b", "c"], ["a", "b", "c"])
        first = view.others("b")
        assert first == ("a", "c")
        assert view.others("b") is first  # cached per (view, addr)

    def test_advance_builds_fresh_view_with_fresh_others(self):
        membership = Membership(MembershipView(0, ["a", "b"], ["a", "b"]))
        old = membership.current
        old_others = old.others("a")
        new = membership.advance(servers=["a", "b", "c"],
                                 shard_table=["a", "b"])
        assert new.epoch == 1
        assert membership.current is new
        assert old.others("a") is old_others  # old snapshot untouched
        assert new.others("a") == ("b", "c")

    def test_subscribe_sees_each_advance(self):
        membership = Membership(MembershipView(0, ["a"], ["a"]))
        seen = []
        membership.subscribe(lambda v: seen.append(v.epoch))
        membership.advance()
        membership.advance()
        assert seen == [1, 2]

    def test_wire_roundtrip(self):
        view = MembershipView(3, ["a", "b"], ["b", "a", "b", "a"])
        clone = MembershipView.from_wire(view.to_wire())
        assert clone.epoch == 3
        assert clone.servers == view.servers
        assert clone.shard_table == view.shard_table

    def test_rename_coordinator_is_first_live_member(self):
        view = MembershipView(1, ["s-1", "s-2"], ["s-1", "s-2"])
        assert view.rename_coordinator == "s-1"


class TestScalePlans:
    def _view(self, n, sps=8):
        return bootstrap_view(FSConfig(num_servers=n, shards_per_server=sps))

    def test_scale_up_quota_and_minimal_movement(self):
        view = self._view(4)
        servers, table, moved = plan_scale_up(view, "server-4")
        assert servers == view.servers + ("server-4",)
        quota = view.num_shards // 5
        assert len(moved) == quota
        # Only the moved shards change owner; the rest are untouched.
        for shard in range(view.num_shards):
            if shard in moved:
                assert table[shard] == "server-4"
            else:
                assert table[shard] == view.shard_table[shard]

    def test_scale_up_is_deterministic(self):
        view = self._view(3)
        assert plan_scale_up(view, "x") == plan_scale_up(view, "x")

    def test_scale_up_rejects_existing_member(self):
        with pytest.raises(ValueError):
            plan_scale_up(self._view(2), "server-0")

    def test_scale_down_moves_exactly_the_departing_shards(self):
        view = self._view(4)
        departing = view.owned_shards("server-2")
        servers, table, moved = plan_scale_down(view, "server-2")
        assert "server-2" not in servers
        assert "server-2" not in table
        assert sorted(moved) == sorted(departing)
        for shard in range(view.num_shards):
            if shard not in departing:
                assert table[shard] == view.shard_table[shard]

    def test_scale_down_balances_survivors(self):
        view = self._view(3)
        _servers, table, _moved = plan_scale_down(view, "server-0")
        counts = [table.count(a) for a in ("server-1", "server-2")]
        assert max(counts) - min(counts) <= 1

    def test_scale_down_guards(self):
        view = self._view(2)
        with pytest.raises(ValueError):
            plan_scale_down(view, "not-a-member")
        with pytest.raises(ValueError):
            plan_scale_down(bootstrap_view(FSConfig(num_servers=1)), "server-0")

    def test_up_then_down_roundtrips_to_original_table(self):
        view = self._view(2)
        servers, table, _ = plan_scale_up(view, "server-2")
        grown = MembershipView(1, servers, table)
        _servers2, table2, moved2 = plan_scale_down(grown, "server-2")
        # Everything the joiner held moves back to survivors; table stays
        # valid (no references to the departed member).
        assert sorted(moved2) == sorted(grown.owned_shards("server-2"))
        assert set(table2) <= {"server-0", "server-1"}


class TestClusterMapFacade:
    def test_facade_tracks_membership_epoch(self):
        config = FSConfig(num_servers=2)
        cmap = ClusterMap(config)
        assert cmap.epoch == 0
        assert cmap.num_servers == 2
        old_view = cmap.view
        cmap.membership.advance(servers=["server-0", "server-1", "x"],
                                shard_table=old_view.shard_table)
        assert cmap.epoch == 1
        assert cmap.num_servers == 3
        assert cmap.view is not old_view
