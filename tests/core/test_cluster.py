"""Cluster assembly, introspection, and the rack map."""

import pytest

from repro.core import FSConfig, SwitchFSCluster
from repro.core.cluster import _RackMap


class TestAssembly:
    def test_servers_and_switch_wired(self):
        cluster = SwitchFSCluster(FSConfig(num_servers=3, cores_per_server=2))
        assert len(cluster.servers) == 3
        assert cluster.switch is not None
        assert cluster.control is not None
        # Exactly one server holds the root inode.
        roots = sum(
            1 for s in cluster.servers if ("D", 0, "/") in s.kv
        )
        assert roots == 1

    def test_server_backend_has_no_switch(self):
        cluster = SwitchFSCluster(
            FSConfig(num_servers=2, cores_per_server=2, stale_backend="server")
        )
        assert cluster.switch is None
        assert cluster.switch_stats() is None
        assert cluster.staleset_server is not None
        with pytest.raises(RuntimeError):
            cluster.fail_switch()

    def test_clients_cached_by_index(self):
        cluster = SwitchFSCluster(FSConfig(num_servers=2, cores_per_server=2))
        assert cluster.client(0) is cluster.client(0)
        assert cluster.client(0) is not cluster.client(1)

    def test_server_by_addr(self):
        cluster = SwitchFSCluster(FSConfig(num_servers=2, cores_per_server=2))
        assert cluster.server_by_addr("server-1").addr == "server-1"
        with pytest.raises(KeyError):
            cluster.server_by_addr("server-9")

    def test_leaf_spine_builds_spines(self):
        cluster = SwitchFSCluster(
            FSConfig(
                num_servers=4, cores_per_server=2,
                topology="leaf-spine", num_racks=2, num_spine_switches=2,
            )
        )
        assert len(cluster.spines) == 2
        assert cluster.switch is cluster.spines[0]


class TestSettle:
    def test_settle_raises_when_entries_stuck(self):
        cluster = SwitchFSCluster(
            FSConfig(num_servers=2, cores_per_server=2, proactive_enabled=False)
        )
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        cluster.run_op(fs.create("/d/f"))
        # Proactive aggregation disabled: entries never drain.
        with pytest.raises(RuntimeError, match="did not settle"):
            cluster.settle(quiet_us=100.0)

    def test_settle_succeeds_with_proactive(self):
        cluster = SwitchFSCluster(FSConfig(num_servers=2, cores_per_server=2))
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        for i in range(5):
            cluster.run_op(fs.create(f"/d/f{i}"))
        cluster.settle()
        assert cluster.total_pending_entries() == 0


class TestRackMap:
    def test_striping(self):
        racks = _RackMap(2)
        assert racks["server-0"] == 0
        assert racks["server-1"] == 1
        assert racks["server-2"] == 0
        assert racks["client-3"] == 1

    def test_singleton_hosts_default_to_rack_zero(self):
        racks = _RackMap(4)
        assert racks["staleset-server"] == 0
