"""Tests for the shared server runtime substrate (ServerRuntime),
the phase instrumentation, the unified error hierarchy, and the
AsyncFS-terminology aliases."""

import pytest

import repro
from repro.baselines import BaselineCluster, SyncMetadataServer
from repro.baselines.common import PerFilePartition
from repro.core import FSConfig, MetadataServer, ServerRuntime, SwitchFSCluster
from repro.errors import ReproError
from repro.sim import PhaseStats


def switchfs(**overrides):
    defaults = dict(num_servers=2, cores_per_server=2, seed=9)
    defaults.update(overrides)
    return SwitchFSCluster(FSConfig(**defaults))


def baseline(**overrides):
    defaults = dict(num_servers=2, cores_per_server=2, seed=9)
    defaults.update(overrides)
    return BaselineCluster(FSConfig(**defaults), partition_cls=PerFilePartition)


class TestSharedRuntime:
    def test_both_server_types_are_runtime_instances(self):
        sw = switchfs()
        bl = baseline()
        assert isinstance(sw.servers[0], ServerRuntime)
        assert isinstance(bl.servers[0], ServerRuntime)

    def test_substrate_methods_are_shared_not_overridden(self):
        # The fair-comparison property (§6.1): CPU accounting, lock
        # acquisition, and RPC plumbing are the same code object for
        # SwitchFS and the baselines, not parallel implementations.
        for method in ("_cpu", "_acquire", "_call", "_inode_lock",
                       "_net_penalty", "_wait_recovered"):
            assert getattr(MetadataServer, method) is getattr(ServerRuntime, method)
            assert getattr(SyncMetadataServer, method) is getattr(ServerRuntime, method)

    def test_cpu_serializes_on_one_core(self):
        cluster = switchfs(num_servers=1, cores_per_server=1)
        server = cluster.servers[0]
        sim = cluster.sim

        def burn():
            yield from server._cpu(10.0)

        t0 = sim.now
        p1 = sim.spawn(burn(), name="b1")
        p2 = sim.spawn(burn(), name="b2")
        sim.run_process(p1)
        sim.run_process(p2)
        expected = 2 * 10.0 * server.perf.stack_multiplier
        assert sim.now - t0 == pytest.approx(expected)
        # The second burst's core wait landed in the queue phase.
        assert server.phases.total("queue") == pytest.approx(
            10.0 * server.perf.stack_multiplier
        )
        assert server.phases.total("cpu") == pytest.approx(expected)

    def test_recovery_gate_blocks_baseline_ops_too(self):
        cluster = baseline()
        fs = cluster.client(0)
        cluster.run_op(fs.create("/f"))
        for server in cluster.servers:
            server.begin_recovery()
            assert server.recovering
        done = []

        def op():
            value = yield from fs.stat("/f")
            done.append(value)

        cluster.sim.spawn(op(), name="op")
        cluster.run(until=cluster.sim.now + 500.0)
        assert not done  # gated
        for server in cluster.servers:
            server.end_recovery()
            assert not server.recovering
        cluster.run(until=cluster.sim.now + 2_000.0)
        assert done

    def test_lock_wait_recorded_as_lock_phase(self):
        cluster = switchfs(num_servers=1)
        server = cluster.servers[0]
        sim = cluster.sim
        lock = server._inode_lock(("F", 0, "x"))

        def holder():
            yield from server._acquire(lock, "w")
            yield sim.timeout(50.0)
            lock.release_write()

        def waiter():
            yield from server._acquire(lock, "w")
            lock.release_write()

        p1 = sim.spawn(holder(), name="h")
        p2 = sim.spawn(waiter(), name="w")
        sim.run_process(p1)
        sim.run_process(p2)
        assert server.phases.total("lock") == pytest.approx(50.0)


class TestPhaseStats:
    def test_accumulates_and_means(self):
        ps = PhaseStats()
        ps.add("cpu", 2.0)
        ps.add("cpu", 4.0)
        ps.add("net", 1.0)
        assert ps.total("cpu") == pytest.approx(6.0)
        assert ps.count("cpu") == 2
        assert ps.mean("cpu") == pytest.approx(3.0)
        assert ps.total("lock") == 0.0
        assert ps.mean("lock") == 0.0

    def test_negative_sample_rejected(self):
        ps = PhaseStats()
        with pytest.raises(ValueError):
            ps.add("cpu", -0.1)

    def test_merge_and_clear(self):
        a, b = PhaseStats(), PhaseStats()
        a.add("cpu", 1.0)
        b.add("cpu", 2.0)
        b.add("queue", 3.0)
        a.merge(b)
        assert a.total("cpu") == pytest.approx(3.0)
        assert a.count("cpu") == 2
        assert a.total("queue") == pytest.approx(3.0)
        a.clear()
        assert a.as_dict() == {}

    def test_servers_record_phases_during_ops(self):
        cluster = switchfs()
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        cluster.run_op(fs.create("/d/f"))
        total_cpu = sum(s.phases.total("cpu") for s in cluster.servers)
        assert total_cpu > 0.0


class TestErrorHierarchy:
    def test_fs_and_kv_errors_share_the_root(self):
        from repro.core.errors import FSError
        from repro.kvstore.errors import KeyNotFound, KVError
        from repro.net import RpcError

        assert issubclass(RpcError, ReproError)
        assert issubclass(FSError, RpcError)
        assert issubclass(FSError, ReproError)
        assert issubclass(KVError, ReproError)
        assert issubclass(KeyNotFound, KVError)

    def test_reexports_resolve_to_canonical_classes(self):
        import repro.errors as errors
        from repro.core.errors import FSError
        from repro.kvstore.errors import KeyNotFound
        from repro.net import RpcError

        assert errors.RpcError is RpcError
        assert errors.FSError is FSError
        assert errors.KeyNotFound is KeyNotFound
        with pytest.raises(AttributeError):
            errors.NoSuchError

    def test_one_except_catches_every_layer(self):
        from repro.core.errors import ENOENT, FSError
        from repro.kvstore.errors import KeyNotFound

        for exc in (FSError(ENOENT, "x"), KeyNotFound("k")):
            try:
                raise exc
            except ReproError:
                pass


class TestAsyncFSAliases:
    def test_aliases_resolve_to_switchfs_classes(self):
        from repro.core import LibFS

        assert repro.AsyncFSCluster is SwitchFSCluster
        assert repro.AsyncFSServer is MetadataServer
        assert repro.AsyncFSClient is LibFS
        assert repro.AsyncFSConfig is FSConfig
        assert repro.AsyncFSRuntime is ServerRuntime

    def test_alias_cluster_runs_ops(self):
        cluster = repro.AsyncFSCluster(repro.AsyncFSConfig(num_servers=2, seed=3))
        fs = cluster.client(0)
        assert cluster.run_op(fs.mkdir("/x"))["status"] == "ok"

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.AsyncFSNope

    def test_dir_lists_aliases(self):
        listing = dir(repro)
        assert "AsyncFSCluster" in listing
