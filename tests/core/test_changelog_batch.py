"""Incremental recast state and the batched/live-indexed change-log table.

``ChangeLog`` maintains ``max_timestamp``/``entry_delta`` as running
values so ``recast()`` is O(1); ``extend``/``detach``/``load`` must keep
that invariant.  ``ChangeLogTable`` keeps a lazily-filtered live index of
non-empty groups instead of rescanning every log (DESIGN.md §11).
"""

from repro.core.changelog import ChangeLog, ChangeLogEntry, ChangeLogTable, ChangeOp


def entry(ts, op=ChangeOp.CREATE, name="f"):
    return ChangeLogEntry(timestamp=ts, op=op, name=name)


def assert_running_state_consistent(log: ChangeLog):
    """The running recast values must equal a scan-derived recomputation."""
    assert log.max_timestamp == max((e.timestamp for e in log.entries), default=0.0)
    assert log.entry_delta == sum(e.op.entry_delta for e in log.entries)


class TestChangeLogRunningRecast:
    def test_append_maintains_running_values(self):
        log = ChangeLog(dir_id=1, fingerprint=7)
        log.append(entry(5.0), 0, now=5.0)
        log.append(entry(3.0, ChangeOp.DELETE, "g"), 1, now=6.0)
        log.append(entry(9.0, ChangeOp.MKDIR, "h"), 2, now=7.0)
        assert_running_state_consistent(log)
        recast = log.recast()
        assert recast.max_timestamp == 9.0
        assert recast.entry_delta == 1
        assert recast.num_ops == 3

    def test_extend_equals_repeated_append(self):
        a = ChangeLog(dir_id=1, fingerprint=7)
        b = ChangeLog(dir_id=1, fingerprint=7)
        entries = [entry(2.0), entry(8.0, ChangeOp.RMDIR, "d"), entry(4.0)]
        for i, e in enumerate(entries):
            a.append(e, i, now=10.0)
        b.extend(entries, [0, 1, 2], now=10.0)
        assert a.entries == b.entries
        assert a.wal_lsns == b.wal_lsns
        assert a.max_timestamp == b.max_timestamp
        assert a.entry_delta == b.entry_delta
        assert a.last_append_at == b.last_append_at

    def test_drain_resets_running_values(self):
        log = ChangeLog(dir_id=1, fingerprint=7)
        log.append(entry(5.0), 0, now=5.0)
        entries, lsns = log.drain()
        assert (entries, lsns) == ([entry(5.0)], [0])
        assert log.max_timestamp == 0.0
        assert log.entry_delta == 0
        assert log.recast().num_ops == 0

    def test_detach_recomputes_max_only_when_needed(self):
        log = ChangeLog(dir_id=1, fingerprint=7)
        log.append(entry(5.0, name="a"), 0, now=5.0)
        log.append(entry(9.0, name="b"), 1, now=9.0)
        assert log.detach(entry(9.0, name="b"), 1)
        assert_running_state_consistent(log)
        assert log.max_timestamp == 5.0
        # Detaching an entry that was already drained is a harmless no-op.
        assert not log.detach(entry(9.0, name="b"), 1)
        assert log.detach(entry(5.0, name="a"), 0)
        assert log.max_timestamp == 0.0
        assert log.entry_delta == 0

    def test_load_rebuilds_running_state(self):
        log = ChangeLog(dir_id=1, fingerprint=7)
        log.append(entry(99.0), 5, now=99.0)
        log.load([entry(2.0), entry(6.0, ChangeOp.DELETE, "g")], [10, 11])
        assert_running_state_consistent(log)
        assert log.max_timestamp == 6.0
        assert log.entry_delta == 0


class TestChangeLogTableLiveIndex:
    def test_non_empty_groups_tracks_appends_and_drains(self):
        table = ChangeLogTable()
        table.append(1, 7, entry(1.0), 0, now=1.0)
        table.extend(2, 7, [entry(2.0), entry(3.0)], [1, 2], now=3.0)
        table.append(3, 9, entry(4.0), 3, now=4.0)
        assert sorted(table.non_empty_groups()) == [7, 9]
        assert table.pending_entries() == 4
        drained = table.drain_group(7)
        assert sorted(d for d, _, _ in drained) == [1, 2]
        assert table.non_empty_groups() == [9]
        assert table.pending_entries() == 1

    def test_direct_drain_leaves_stale_superset_that_reads_gc(self):
        # The push path drains ChangeLog objects directly, behind the
        # table's back; the live index must filter (and GC) those lazily.
        table = ChangeLogTable()
        log = table.append(1, 7, entry(1.0), 0, now=1.0)
        log.drain()
        assert table.logs_in_group(7) == []
        assert table.non_empty_groups() == []
        assert table.pending_entries() == 0
        # Drained groups resurrect cleanly on the next append.
        table.append(1, 7, entry(2.0), 1, now=2.0)
        assert table.non_empty_groups() == [7]

    def test_drain_all_covers_every_live_group(self):
        table = ChangeLogTable()
        table.append(1, 7, entry(1.0), 0, now=1.0)
        table.append(2, 9, entry(2.0), 1, now=2.0)
        drained = table.drain_all()
        assert sorted((d, fp) for d, fp, _, _ in drained) == [(1, 7), (2, 9)]
        assert table.non_empty_groups() == []
        assert table.pending_entries() == 0

    def test_empty_extend_does_not_mark_live(self):
        table = ChangeLogTable()
        table.extend(1, 7, [], [], now=1.0)
        assert table.non_empty_groups() == []
        assert table.total_appends == 0

    def test_load_marks_live(self):
        table = ChangeLogTable()
        table.load(1, 7, [entry(1.0)], [0])
        assert table.non_empty_groups() == [7]
        assert table.pending_entries() == 1
