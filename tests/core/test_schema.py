"""Unit + property tests for the metadata scheme."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DirInode,
    FileInode,
    ROOT_ID,
    dir_entry_key,
    dir_meta_key,
    file_meta_key,
    fingerprint_of,
    new_dir_id,
    owner_of_dir,
    owner_of_file,
    root_inode,
)
from repro.net import FINGERPRINT_BITS

names = st.text(alphabet="abcdefghij0123456789_-", min_size=1, max_size=12)
pids = st.integers(min_value=0, max_value=(1 << 256) - 1)


class TestFingerprints:
    def test_deterministic(self):
        assert fingerprint_of(1, "a") == fingerprint_of(1, "a")

    def test_distinct_inputs_differ(self):
        assert fingerprint_of(1, "a") != fingerprint_of(1, "b")
        assert fingerprint_of(1, "a") != fingerprint_of(2, "a")

    @given(pid=pids, name=names)
    def test_range_and_nonzero_tag(self, pid, name):
        fp = fingerprint_of(pid, name)
        assert 0 <= fp < (1 << FINGERPRINT_BITS)
        assert fp & 0xFFFF_FFFF != 0  # tag 0 is reserved for empty registers

    @given(pid=pids, name=names, n=st.integers(min_value=1, max_value=64))
    def test_fingerprint_group_affinity(self, pid, name, n):
        """Directories with equal fingerprints always share an owner."""
        fp = fingerprint_of(pid, name)
        assert owner_of_dir(fp, n) == fp % n
        assert 0 <= owner_of_dir(fp, n) < n


class TestPartitioning:
    @given(pid=pids, name=names, n=st.integers(min_value=1, max_value=64))
    def test_file_owner_in_range(self, pid, name, n):
        assert 0 <= owner_of_file(pid, name, n) < n

    def test_file_partition_spreads(self):
        """Per-file hashing spreads a directory's files over servers."""
        owners = {owner_of_file(7, f"f{i}", 8) for i in range(200)}
        assert len(owners) == 8


class TestDirIds:
    def test_unique_across_nonces(self):
        assert new_dir_id(1, "a", 1) != new_dir_id(1, "a", 2)

    def test_deterministic_for_same_nonce(self):
        assert new_dir_id(1, "a", 0) == new_dir_id(1, "a", 0)

    @given(pid=pids, name=names)
    def test_256_bit_range(self, pid, name):
        assert 0 <= new_dir_id(pid, name, 0) < (1 << 256)


class TestKeysAndInodes:
    def test_key_namespaces_disjoint(self):
        assert dir_meta_key(1, "x")[0] != file_meta_key(1, "x")[0]
        assert dir_entry_key(1, "x")[0] == "E"

    def test_dir_inode_touched(self):
        d = DirInode(id=5, pid=1, name="d", fingerprint=9, mtime=10.0, entry_count=3)
        d2 = d.touched(20.0, entry_delta=2)
        assert d2.mtime == 20.0 and d2.entry_count == 5
        assert d.mtime == 10.0  # frozen original untouched

    def test_touched_mtime_never_regresses(self):
        d = DirInode(id=5, pid=1, name="d", fingerprint=9, mtime=30.0)
        assert d.touched(20.0).mtime == 30.0

    def test_root_inode(self):
        root = root_inode()
        assert root.id == ROOT_ID
        assert root.name == "/"
        assert root.entry_count == 0

    def test_file_inode_defaults(self):
        f = FileInode(pid=1, name="f")
        assert f.size == 0 and f.perm == 0o644
