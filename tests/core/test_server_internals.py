"""White-box tests of MetadataServer internals."""

from repro.core import (
    ChangeLogEntry,
    ChangeOp,
    FSConfig,
    SwitchFSCluster,
    dir_entry_key,
    fingerprint_of,
    ROOT_ID,
)


def make(**overrides):
    defaults = dict(num_servers=3, cores_per_server=2, seed=6)
    defaults.update(overrides)
    return SwitchFSCluster(FSConfig(**defaults))


class TestMergePulled:
    def test_merges_remote_and_local(self):
        cluster = make()
        server = cluster.servers[0]
        e1 = ChangeLogEntry(1.0, ChangeOp.CREATE, "a")
        e2 = ChangeLogEntry(2.0, ChangeOp.CREATE, "b")
        e3 = ChangeLogEntry(3.0, ChangeOp.DELETE, "a")
        remote = [{"logs": [(10, [e1])], "lsns": [0]},
                  {"logs": [(10, [e2]), (11, [e3])], "lsns": [1, 2]}]
        local = [(10, [e3], [5])]
        merged = server._merge_pulled(remote, local)
        by_dir = {d: entries for d, entries, _ in merged}
        assert len(by_dir[10]) == 3
        assert by_dir[11] == [e3]
        lsns = {d: lsns for d, _, lsns in merged}
        assert lsns[10] == [5]  # local lsns preserved
        assert lsns[11] is None

    def test_empty_inputs(self):
        cluster = make()
        assert cluster.servers[0]._merge_pulled([], []) == []


class TestApplyEntryToList:
    def test_create_then_delete_roundtrip(self):
        cluster = make()
        server = cluster.servers[0]
        e_add = ChangeLogEntry(1.0, ChangeOp.CREATE, "x")
        e_del = ChangeLogEntry(2.0, ChangeOp.DELETE, "x")
        assert server._apply_entry_to_list(99, e_add) == 1
        assert dir_entry_key(99, "x") in server.kv
        assert server._apply_entry_to_list(99, e_del) == -1
        assert dir_entry_key(99, "x") not in server.kv

    def test_reapplication_is_idempotent_for_counts(self):
        """Presence-aware deltas: double-applying an entry adds zero."""
        cluster = make()
        server = cluster.servers[0]
        e = ChangeLogEntry(1.0, ChangeOp.CREATE, "y")
        assert server._apply_entry_to_list(7, e) == 1
        assert server._apply_entry_to_list(7, e) == 0
        e_del = ChangeLogEntry(2.0, ChangeOp.DELETE, "y")
        assert server._apply_entry_to_list(7, e_del) == -1
        assert server._apply_entry_to_list(7, e_del) == 0


class TestUnlockTokens:
    def test_duplicate_release_is_noop(self):
        cluster = make(proactive_enabled=False)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        cluster.run_op(fs.create("/d/f"))
        # All tokens already released by the switch multicast; releasing a
        # bogus token again must not blow up.
        for server in cluster.servers:
            server.release_unlock_token(424242, applied_sync=False)
            assert not server._pending_unlocks

    def test_watchdog_releases_leaked_locks(self):
        cluster = make(proactive_enabled=False, unlock_watchdog_us=100.0)
        server = cluster.servers[0]
        # Forge a pending unlock with held locks.
        from repro.sim import RWLock

        lock = RWLock(cluster.sim)
        cluster.sim.run_process(cluster.sim.spawn(_acquire(lock), name="acq"))
        log = server.changelogs.log_for(5, fingerprint_of(ROOT_ID, "z"))
        server._pending_unlocks[777] = {
            "locks": [(lock, "w")], "log": log,
            "entry": ChangeLogEntry(1.0, ChangeOp.CREATE, "z"), "lsn": 0,
        }
        server._arm_unlock_watchdog(777)
        cluster.run(until=cluster.sim.now + 500.0)
        assert not lock.write_locked
        assert server.counters.get("unlock_watchdog_fires") == 1


def _acquire(lock):
    yield lock.acquire_write()


class TestGroupBlocks:
    def test_reads_wait_for_inflight_aggregation(self):
        cluster = make(proactive_enabled=False)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        cluster.run_op(fs.create("/d/f"))
        fp = fingerprint_of(ROOT_ID, "d")
        owner = cluster.server_by_addr(cluster.cmap.dir_owner_by_fp(fp))
        # Block the group manually, issue a statdir, confirm it stalls.
        block = cluster.sim.event()
        owner._group_blocks[fp] = block
        done = []

        def reader():
            value = yield from fs.statdir("/d")
            done.append(value)

        cluster.sim.spawn(reader(), name="reader")
        cluster.run(until=cluster.sim.now + 300.0)
        assert not done  # still blocked
        del owner._group_blocks[fp]
        block.succeed()
        cluster.run(until=cluster.sim.now + 2_000.0)
        assert done and done[0]["entry_count"] == 1


class TestPullLocks:
    def test_pull_waiter_event_reused(self):
        cluster = make()
        server = cluster.servers[0]
        ev1 = server._pull_waiter(42)
        ev2 = server._pull_waiter(42)
        assert ev1 is ev2
        server._pull_locks[42] = []
        server._release_pull_locks(42)
        assert ev1.triggered

    def test_release_without_locks_is_safe(self):
        cluster = make()
        cluster.servers[0]._release_pull_locks(999)  # no-op


class TestFlushAllChangelogs:
    def test_flush_applies_remote_and_local(self):
        cluster = make(proactive_enabled=False)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        for i in range(6):
            cluster.run_op(fs.create(f"/d/f{i}"))
        assert cluster.total_pending_entries() > 0

        def drive():
            for server in cluster.servers:
                yield cluster.sim.spawn(server.flush_all_changelogs(), name="f")

        cluster.sim.run_process(cluster.sim.spawn(drive(), name="drv"))
        assert cluster.total_pending_entries() == 0
        # Inode is current without any aggregation.
        fp = fingerprint_of(ROOT_ID, "d")
        owner = cluster.server_by_addr(cluster.cmap.dir_owner_by_fp(fp))
        from repro.core import dir_meta_key

        inode = owner.kv.get(dir_meta_key(ROOT_ID, "d"))
        assert inode.entry_count == 6


class TestRecoveryBlocksOps:
    def test_ops_wait_until_end_recovery(self):
        cluster = make()
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        for server in cluster.servers:
            server.begin_recovery()
        done = []

        def op():
            value = yield from fs.create("/d/f")
            done.append(value)

        cluster.sim.spawn(op(), name="op")
        cluster.run(until=cluster.sim.now + 500.0)
        assert not done
        for server in cluster.servers:
            server.end_recovery()
        cluster.run(until=cluster.sim.now + 2_000.0)
        assert done


class TestDoubleInodeLockDiscipline:
    """Characterization: the double-inode flow's lock acquisition order.

    Create/delete/mkdir/rmdir take the parent's change-log READ lock
    first, then the target inode's WRITE lock (ops.py).  Aggregation
    takes change-log WRITE locks, so this ordering is what lets updates
    of one directory proceed concurrently while an aggregation drains
    the log exclusively.  A reordering would be a protocol change.
    """

    def test_create_acquires_changelog_read_before_inode_write(self):
        cluster = make(num_servers=1, proactive_enabled=False)
        server = cluster.servers[0]
        fs = cluster.client(0)
        d_id = cluster.run_op(fs.mkdir("/d"))["id"]

        order = []
        orig_acquire = server._acquire

        def recording(lock, mode):
            order.append((lock, mode))
            return orig_acquire(lock, mode)

        server._acquire = recording
        try:
            cluster.run_op(fs.create("/d/f"))
        finally:
            server._acquire = orig_acquire

        from repro.core import file_meta_key

        cl_lock = server._changelog_lock(d_id)
        inode_lock = server._inode_lock(file_meta_key(d_id, "f"))
        assert (cl_lock, "r") in order
        assert (inode_lock, "w") in order
        assert order.index((cl_lock, "r")) < order.index((inode_lock, "w"))

    def test_mkdir_uses_same_discipline(self):
        cluster = make(num_servers=1, proactive_enabled=False)
        server = cluster.servers[0]
        fs = cluster.client(0)
        d_id = cluster.run_op(fs.mkdir("/d"))["id"]

        order = []
        orig_acquire = server._acquire

        def recording(lock, mode):
            order.append((lock, mode))
            return orig_acquire(lock, mode)

        server._acquire = recording
        try:
            cluster.run_op(fs.mkdir("/d/sub"))
        finally:
            server._acquire = orig_acquire

        from repro.core import dir_meta_key

        cl_lock = server._changelog_lock(d_id)
        inode_lock = server._inode_lock(dir_meta_key(d_id, "sub"))
        assert order.index((cl_lock, "r")) < order.index((inode_lock, "w"))


class TestUnlockTokenLifecycle:
    """Characterization: deferred-unlock tokens drain and locks release."""

    def test_tokens_drain_after_completed_ops(self):
        cluster = make(proactive_enabled=False)
        fs = cluster.client(0)
        cluster.run_op(fs.mkdir("/d"))
        for i in range(4):
            cluster.run_op(fs.create(f"/d/f{i}"))
        # The switch's multicast copy released every token; nothing
        # pending, no lock still held anywhere.
        for server in cluster.servers:
            assert not server._pending_unlocks
            for lock in server._inode_locks.values():
                assert not lock.write_locked
            for lock in server._changelog_locks.values():
                assert not lock.write_locked and lock.readers == 0

    def test_release_returns_true_then_false(self):
        from repro.sim import RWLock

        cluster = make(proactive_enabled=False)
        server = cluster.servers[0]
        lock = RWLock(cluster.sim)
        cluster.sim.run_process(cluster.sim.spawn(_acquire(lock), name="acq"))
        log = server.changelogs.log_for(3, fingerprint_of(ROOT_ID, "q"))
        server._pending_unlocks[123] = {
            "locks": [(lock, "w")], "log": log,
            "entry": ChangeLogEntry(1.0, ChangeOp.CREATE, "q"), "lsn": 0,
        }
        assert server.release_unlock_token(123, applied_sync=False) is True
        assert not lock.write_locked  # the deferred unlock released it
        # A duplicate (the other multicast copy) is refused, so exactly
        # one copy is consumed per token.
        assert server.release_unlock_token(123, applied_sync=False) is False
