"""Unit tests for the stale-set-server backend (§6.5.2)."""

import pytest

from repro.core import FSConfig
from repro.core.staleset_backend import ServerBackendClient, StaleSetServer
from repro.net import Network, PassthroughSwitch, RpcNode, single_rack_path
from repro.sim import Simulator


def make_pair(cores=2, op_us=1.0):
    sim = Simulator()
    net = Network(sim, single_rack_path([PassthroughSwitch()]))
    config = FSConfig(
        num_servers=2, stale_backend="server",
        staleset_server_cores=cores, staleset_server_op_us=op_us,
    )
    node = RpcNode(sim, net, config.staleset_server_addr)
    server = StaleSetServer(sim, node, config)
    caller_node = RpcNode(sim, net, "server-0")
    client = ServerBackendClient(caller_node, config)
    return sim, server, client


def run(sim, gen):
    return sim.run_process(sim.spawn(gen, name="op"))


FP = 0x2_0000_0042


class TestServerBackend:
    def test_insert_query_remove_cycle(self):
        sim, server, client = make_pair()
        assert run(sim, client.insert(FP)) is True
        assert run(sim, client.query(FP)) is True
        assert run(sim, client.remove(FP, "server-0", seq=1)) is True
        assert run(sim, client.query(FP)) is False

    def test_duplicate_remove_filtered(self):
        sim, server, client = make_pair()
        run(sim, client.insert(FP))
        run(sim, client.remove(FP, "server-0", seq=5))
        run(sim, client.insert(FP))
        run(sim, client.remove(FP, "server-0", seq=5))  # stale seq
        assert run(sim, client.query(FP)) is True

    def test_overflow_reports_false(self):
        sim, server, client = make_pair()
        server.stale_set = type(server.stale_set)(
            server.stale_set.config.__class__(num_stages=1, index_bits=1)
        )
        assert run(sim, client.insert(0x0_0000_0001)) is True
        assert run(sim, client.insert(0x0_0000_0002)) is False  # set full

    def test_cpu_capacity_bounds_throughput(self):
        """With one core at 10 us/op, 20 ops take >= 200 us of virtual time."""
        sim, server, client = make_pair(cores=1, op_us=10.0)

        def burst():
            for i in range(20):
                yield from client.query(FP)

        t0 = sim.now
        run(sim, burst())
        assert sim.now - t0 >= 200.0

    def test_more_cores_do_not_help_serial_caller(self):
        """A single closed-loop caller is latency-bound either way."""
        def elapsed(cores):
            sim, server, client = make_pair(cores=cores, op_us=5.0)

            def burst():
                for _ in range(10):
                    yield from client.query(FP)

            t0 = sim.now
            run(sim, burst())
            return sim.now - t0

        assert abs(elapsed(1) - elapsed(12)) < 1.0
