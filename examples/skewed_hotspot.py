#!/usr/bin/env python3
"""Hotspot demo: a burst of creates into one shared directory.

Run:  python examples/skewed_hotspot.py

This is the paper's motivating scenario (§2.3): every create must update
the same parent directory.  Synchronous systems serialise on that inode;
SwitchFS logs the updates locally on each file's owner and lets the
switch track the directory's scattered state, so throughput scales.
"""

import time

from repro.baselines import CFSKVCluster, InfiniFSCluster
from repro.bench import run_stream
from repro.core import FSConfig, SwitchFSCluster
from repro.workloads import FixedOpStream, bootstrap, single_large_directory

N_OPS = 6_000
INFLIGHT = 32


def measure(name, make_cluster):
    cluster = make_cluster(FSConfig(num_servers=8, cores_per_server=4))
    pop = bootstrap(cluster, single_large_directory(64), warm_clients=[0])
    stream = FixedOpStream("create", pop, seed=7, dir_choice="single")
    wall = time.time()
    result = run_stream(cluster, stream, total_ops=N_OPS, inflight=INFLIGHT)
    print(
        f"  {name:<10} {result.throughput_kops:8.1f} Kops/s   "
        f"avg latency {result.mean_latency_us:7.1f} us   "
        f"(simulated {result.sim_elapsed_us/1000:.1f} ms in {time.time()-wall:.1f}s wall)"
    )
    return result


def main() -> None:
    print(f"create x {N_OPS} into ONE shared directory, 8 servers x 4 cores, "
          f"{INFLIGHT} in flight:\n")
    switchfs = measure("SwitchFS", lambda cfg: SwitchFSCluster(cfg))
    infinifs = measure("InfiniFS", InfiniFSCluster)
    cfskv = measure("CFS-KV", CFSKVCluster)
    print(f"\nSwitchFS speedup: {switchfs.throughput_ops/infinifs.throughput_ops:.1f}x "
          f"over InfiniFS, {switchfs.throughput_ops/cfskv.throughput_ops:.1f}x over CFS-KV")
    print("(paper reports up to 13.34x over InfiniFS on skewed workloads)")


if __name__ == "__main__":
    main()
