#!/usr/bin/env python3
"""Replay the CNN-training trace end to end (§6.6).

Run:  python examples/trace_replay.py

Synthesises the AlexNet/ImageNet lifecycle — download every training
file, one epoch of randomised open/read/close, then delete everything —
and replays it against SwitchFS and CFS-KV with data accesses modelled
as fixed-latency datanode reads.
"""

from repro.baselines import CFSKVCluster
from repro.bench import run_stream
from repro.core import FSConfig, SwitchFSCluster
from repro.workloads import CNNTrainingTrace, bootstrap, trace_population

CLASSES = 40
FILES_PER_CLASS = 12
INFLIGHT = 64


def replay(name, make_cluster):
    cluster = make_cluster(FSConfig(num_servers=8, cores_per_server=4))
    pop = bootstrap(cluster, trace_population(CLASSES, FILES_PER_CLASS), warm_clients=[0])
    trace = CNNTrainingTrace(pop, epochs=1, seed=3, data_latency_us=120.0)
    total = len(trace)
    result = run_stream(cluster, trace, total_ops=total, inflight=INFLIGHT)
    print(f"  {name:<10} {result.throughput_kops:8.1f} Kops/s end-to-end over "
          f"{total} ops ({result.sim_elapsed_us/1000:.1f} ms simulated)")
    return result.throughput_ops


def main() -> None:
    print(f"CNN training lifecycle: {CLASSES} class dirs x {FILES_PER_CLASS} files, "
          f"download -> epoch -> removal, {INFLIGHT} in flight\n")
    s = replay("SwitchFS", lambda cfg: SwitchFSCluster(cfg))
    c = replay("CFS-KV", CFSKVCluster)
    print(f"\nSwitchFS end-to-end speedup over CFS-KV: {(s/c - 1)*100:.0f}%")
    print("(paper reports +30.1% end-to-end over CFS-KV on real-world traces)")


if __name__ == "__main__":
    main()
