#!/usr/bin/env python3
"""Quickstart: spin up a SwitchFS cluster and walk the POSIX surface.

Run:  python examples/quickstart.py

Builds a 4-server simulated deployment with the programmable switch on
the rack's network path, performs the core metadata operations, and
prints what the in-network stale set saw along the way.
"""

from repro.core import FSConfig, FSError, SwitchFSCluster


def main() -> None:
    cluster = SwitchFSCluster(FSConfig(num_servers=4, cores_per_server=4))
    fs = cluster.client(0)

    print("== building a small namespace ==")
    cluster.run_op(fs.mkdir("/projects"))
    cluster.run_op(fs.mkdir("/projects/switchfs"))
    for name in ("paper.tex", "eval.csv", "notes.md"):
        cluster.run_op(fs.create(f"/projects/switchfs/{name}"))
        print(f"  create /projects/switchfs/{name}  (returned after "
              f"one round trip; parent update deferred)")

    print("\n== directory reads aggregate deferred updates ==")
    info = cluster.run_op(fs.statdir("/projects/switchfs"))
    print(f"  statdir: entry_count={info['entry_count']} mtime={info['mtime']:.2f}us")
    listing = cluster.run_op(fs.readdir("/projects/switchfs"))
    print(f"  readdir: {sorted(listing['entries'])}")

    print("\n== rename is a coordinated transaction ==")
    cluster.run_op(fs.rename("/projects/switchfs/notes.md", "/projects/notes.md"))
    print("  renamed notes.md up one level")
    print(f"  /projects now lists {sorted(cluster.run_op(fs.readdir('/projects'))['entries'])}")

    print("\n== errors are POSIX-style ==")
    try:
        cluster.run_op(fs.rmdir("/projects/switchfs"))
    except FSError as err:
        print(f"  rmdir /projects/switchfs -> {err.code} (still has files)")

    for name in ("paper.tex", "eval.csv"):
        cluster.run_op(fs.delete(f"/projects/switchfs/{name}"))
    cluster.run_op(fs.rmdir("/projects/switchfs"))
    print("  emptied and removed /projects/switchfs")

    print("\n== what the switch saw ==")
    stats = cluster.switch_stats()
    print(f"  stale-set inserts:   {stats.inserts}")
    print(f"  stale-set queries:   {stats.queries}")
    print(f"  stale-set removes:   {stats.removes}")
    print(f"  response multicasts: {stats.multicasts}")
    print(f"  occupancy now:       {stats.occupancy} fingerprints")
    print(f"\nvirtual time elapsed: {cluster.sim.now:.1f} us")


if __name__ == "__main__":
    main()
