#!/usr/bin/env python3
"""Burst tolerance (§6.3): throughput vs. burst size.

Run:  python examples/burst_tolerance.py

Applications emit bursts of spatially-related operations (a compute job
finishing, EDA temp files).  Synchronous systems collapse as the burst
size grows — all in-flight requests pile onto one directory's lock.
SwitchFS buffers the burst in change-logs and stays flat.
"""

from repro.baselines import InfiniFSCluster
from repro.bench import run_stream
from repro.core import FSConfig, SwitchFSCluster
from repro.workloads import BurstStream, bootstrap, multiple_directories

N_OPS = 4_000
INFLIGHT = 32


def measure(make_cluster, burst_size):
    cluster = make_cluster(FSConfig(num_servers=8, cores_per_server=4))
    pop = bootstrap(cluster, multiple_directories(64, 4), warm_clients=[0])
    stream = BurstStream(pop, burst_size=burst_size, seed=11)
    result = run_stream(cluster, stream, total_ops=N_OPS, inflight=INFLIGHT)
    return result.throughput_kops


def main() -> None:
    print(f"create bursts over 64 directories, {INFLIGHT} in flight\n")
    print(f"{'burst size':>10}  {'SwitchFS':>12}  {'InfiniFS':>12}")
    base_s = base_i = None
    for burst in (10, 50, 200, 1000):
        s = measure(lambda cfg: SwitchFSCluster(cfg), burst)
        i = measure(InfiniFSCluster, burst)
        base_s, base_i = base_s or s, base_i or i
        print(f"{burst:>10}  {s:>9.1f} K  {i:>9.1f} K"
              f"   (vs burst=10: SwitchFS {s/base_s*100:.0f}%, InfiniFS {i/base_i*100:.0f}%)")
    print("\nThe paper reports InfiniFS dropping ~72% from burst 10 to 1000 "
          "while AsyncFS stays stable (Figure 13).")


if __name__ == "__main__":
    main()
