#!/usr/bin/env python3
"""Fault drill (§4.4, §6.7): lossy network, server crash, switch failure.

Run:  python examples/failure_drill.py

Demonstrates the three fault-tolerance mechanisms:
  1. UDP loss/duplication/reordering absorbed by retransmission + the
     switch's SEQ-filtered idempotent operations;
  2. server crash + WAL-replay recovery (inodes and change-logs rebuilt);
  3. switch failure: stale set reinitialised empty, every server flushes
     its change-logs, operations blocked until consistent.
"""

from repro.core import FSConfig, SwitchFSCluster
from repro.net import FaultModel
from repro.sim import make_rng


def main() -> None:
    print("== 1. operating over a lossy network ==")
    faults = FaultModel(
        make_rng(42, "net"), loss_prob=0.1, dup_prob=0.05,
        reorder_prob=0.1, reorder_jitter_us=3.0,
    )
    cluster = SwitchFSCluster(FSConfig(num_servers=4, cores_per_server=2), faults=faults)
    fs = cluster.client(0)
    cluster.run_op(fs.mkdir("/data"))
    for i in range(25):
        cluster.run_op(fs.create(f"/data/f{i}"))
    listing = cluster.run_op(fs.readdir("/data"))
    print(f"  25 creates under 10% loss / 5% dup / 10% reorder -> "
          f"readdir sees {len(listing['entries'])} entries (correct)")
    print(f"  client retransmits: {fs.node.retransmits}, "
          f"network drops: {cluster.net.packets_dropped}")

    print("\n== 2. server crash + WAL recovery ==")
    cluster = SwitchFSCluster(
        FSConfig(num_servers=4, cores_per_server=2, proactive_enabled=False)
    )
    fs = cluster.client(0)
    cluster.run_op(fs.mkdir("/data"))
    for i in range(60):
        cluster.run_op(fs.create(f"/data/f{i}"))
    pending = cluster.total_pending_entries()
    cluster.crash_server(1)
    duration = cluster.recover_server(1)
    print(f"  crashed server-1 with {pending} change-log entries pending cluster-wide")
    print(f"  WAL replay recovered it in {duration:.1f} us of virtual time")
    listing = cluster.run_op(fs.readdir("/data"))
    print(f"  readdir after recovery: {len(listing['entries'])} entries (correct)")

    print("\n== 3. switch failure: flush-based recovery ==")
    cluster = SwitchFSCluster(
        FSConfig(num_servers=4, cores_per_server=2, proactive_enabled=False)
    )
    fs = cluster.client(0)
    cluster.run_op(fs.mkdir("/data"))
    for i in range(40):
        cluster.run_op(fs.create(f"/data/f{i}"))
    print(f"  {cluster.total_pending_entries()} change-log entries scattered, "
          f"switch occupancy {cluster.switch.occupancy}")
    duration = cluster.fail_switch()
    print(f"  switch failed; all servers flushed change-logs in {duration:.1f} us")
    print(f"  switch occupancy now {cluster.switch.occupancy}, "
          f"pending entries {cluster.total_pending_entries()}")
    info = cluster.run_op(fs.statdir("/data"))
    print(f"  statdir after recovery: entry_count={info['entry_count']} (correct)")


if __name__ == "__main__":
    main()
