#!/usr/bin/env python3
"""Scaling study: create throughput vs. cluster size, charted in-terminal.

Run:  python examples/scaling_study.py

Sweeps server counts for SwitchFS and InfiniFS on the single-hot-directory
workload (the paper's Figure 11(a) create panel) and renders the result
as a unicode bar chart — no plotting libraries required.
"""

from repro.bench import Series, ascii_chart, run_stream
from repro.baselines import InfiniFSCluster
from repro.core import FSConfig, SwitchFSCluster
from repro.workloads import FixedOpStream, bootstrap, single_large_directory

OPS = 4000
SERVERS = (2, 4, 8, 16)


def point(make_cluster, servers):
    cluster = make_cluster(FSConfig(num_servers=servers, cores_per_server=4))
    pop = bootstrap(cluster, single_large_directory(OPS + 100), warm_clients=[0])
    stream = FixedOpStream("create", pop, seed=5, dir_choice="single")
    return run_stream(cluster, stream, total_ops=OPS, inflight=64).throughput_kops


def main() -> None:
    series = Series("create throughput, one shared directory", "#servers", "Kops/s")
    for n in SERVERS:
        series.add("SwitchFS", n, round(point(lambda c: SwitchFSCluster(c), n), 1))
        print(f"  SwitchFS @ {n} servers done")
        series.add("InfiniFS", n, round(point(InfiniFSCluster, n), 1))
        print(f"  InfiniFS @ {n} servers done")
    print()
    print(ascii_chart(series, width=44))
    s16 = series.lines["SwitchFS"][16]
    i16 = series.lines["InfiniFS"][16]
    print(f"\nAt 16 servers SwitchFS sustains {s16/i16:.1f}x InfiniFS "
          f"(paper: up to 13.34x on skewed workloads).")


if __name__ == "__main__":
    main()
