"""Setup shim.

This environment has no `wheel` package and no network, so PEP 660
editable installs fail; keeping a setup.py lets `pip install -e .` use the
legacy `setup.py develop` path.
"""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="0.1.0",
    description=(
        "SwitchFS/AsyncFS: asynchronous metadata updates for distributed "
        "filesystems with in-network coordination (EuroSys 2026 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
